// Tests for the serving subsystem: the protocol JSON codec, the bounded
// priority queue, MeshService admission control / cancellation / metrics,
// the EDT cache (hit/miss/eviction/single-flight), cross-job isolation
// under concurrent submitters (run under TSan via the `sanitize` label),
// the warm-arena / warm-cache determinism regressions, and one live
// socket round-trip.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "check/snapshot.hpp"
#include "core/refiner.hpp"
#include "imaging/edt_cache.hpp"
#include "imaging/phantom.hpp"
#include "pipeline/mesh_job.hpp"
#include "serve/job_queue.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/json_writer.hpp"

namespace {

using namespace pi2m;
using namespace pi2m::serve;

// ---------- JSON reader + base64 ----------

TEST(ServeJson, ParsesScalarsAndContainers) {
  std::string err;
  const JsonValue v = json_parse(
      R"({"a":1.5,"b":-3,"s":"hi\nthere","t":true,"n":null,)"
      R"("arr":[1,2,3],"obj":{"k":"v"}})",
      &err);
  ASSERT_TRUE(v.is_object()) << err;
  EXPECT_DOUBLE_EQ(v["a"].as_double(), 1.5);
  EXPECT_EQ(v["b"].as_int(), -3);
  EXPECT_EQ(v["s"].as_string(), "hi\nthere");
  EXPECT_TRUE(v["t"].as_bool());
  EXPECT_TRUE(v["n"].is_null());
  ASSERT_EQ(v["arr"].as_array().size(), 3u);
  EXPECT_EQ(v["arr"].as_array()[2].as_int(), 3);
  EXPECT_EQ(v["obj"]["k"].as_string(), "v");
  // Missing keys chain to null without crashing.
  EXPECT_TRUE(v["missing"]["deeper"].is_null());
}

TEST(ServeJson, DecodesUnicodeEscapes) {
  const JsonValue v = json_parse(R"("é€😀")");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(ServeJson, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated",
        "{\"a\":1}x", "nan", "[1,]"}) {
    std::string err;
    EXPECT_TRUE(json_parse(bad, &err).is_null()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(ServeJson, RoundTripsJsonWriterOutput) {
  telemetry::JsonWriter w;
  w.begin_object()
      .kv("name", "a \"quoted\" \\ value\n")
      .kv("pi", 3.25)
      .key("list")
      .begin_array()
      .value(std::uint64_t{18446744073709551615ULL})
      .value(false)
      .end_array()
      .end_object();
  std::string err;
  const JsonValue v = json_parse(w.str(), &err);
  ASSERT_TRUE(v.is_object()) << err;
  EXPECT_EQ(v["name"].as_string(), "a \"quoted\" \\ value\n");
  EXPECT_DOUBLE_EQ(v["pi"].as_double(), 3.25);
  EXPECT_EQ(v["list"].as_array().size(), 2u);
}

TEST(ServeJson, Base64RoundTrip) {
  std::vector<std::uint8_t> data;
  for (int n = 0; n <= 17; ++n) {
    const std::string enc = base64_encode(data.data(), data.size());
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(base64_decode(enc, &back)) << "len " << n;
    EXPECT_EQ(back, data) << "len " << n;
    data.push_back(static_cast<std::uint8_t>(n * 37 + 5));
  }
  EXPECT_EQ(base64_encode("foob", 4), "Zm9vYg==");
}

TEST(ServeJson, Base64RejectsGarbage) {
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(base64_decode("abc", &out));      // not a multiple of 4
  EXPECT_FALSE(base64_decode("ab!=", &out));     // bad character
  EXPECT_FALSE(base64_decode("=abc", &out));     // padding up front
  EXPECT_FALSE(base64_decode("a===", &out));     // too much padding
  EXPECT_FALSE(base64_decode("Zm9vYg==Zm9v", &out));  // data after padding
  EXPECT_TRUE(base64_decode("", &out));
  EXPECT_TRUE(out.empty());
}

// ---------- protocol ----------

TEST(ServeProtocol, ParsesEveryOp) {
  EXPECT_EQ(parse_request(R"({"op":"ping"})").op, Request::Op::Ping);
  EXPECT_EQ(parse_request(R"({"op":"stats"})").op, Request::Op::Stats);

  Request sub = parse_request(
      R"({"op":"submit","priority":"high","job":{"phantom":"ball",)"
      R"("size":24,"delta":1.25,"threads":3,"cm":"global","lb":"rws",)"
      R"("smooth":2,"report":true,"outputs":["/tmp/x.vtk"]}})");
  ASSERT_EQ(sub.op, Request::Op::Submit) << sub.error;
  EXPECT_EQ(sub.priority, Priority::High);
  EXPECT_EQ(sub.job.phantom, "ball");
  EXPECT_EQ(sub.job.phantom_size, 24);
  EXPECT_DOUBLE_EQ(sub.job.mesh.delta, 1.25);
  EXPECT_EQ(sub.job.mesh.threads, 3);
  EXPECT_EQ(sub.job.mesh.contention_manager, CmKind::Global);
  EXPECT_EQ(sub.job.mesh.load_balancer, LbKind::RWS);
  EXPECT_EQ(sub.job.smooth, 2);
  EXPECT_TRUE(sub.job.want_report);
  ASSERT_EQ(sub.job.outputs.size(), 1u);

  const Request st = parse_request(R"({"op":"status","id":7})");
  ASSERT_EQ(st.op, Request::Op::Status);
  EXPECT_EQ(st.id, 7u);

  const Request sd = parse_request(R"({"op":"shutdown","mode":"now"})");
  ASSERT_EQ(sd.op, Request::Op::Shutdown);
  EXPECT_FALSE(sd.drain);
  EXPECT_TRUE(parse_request(R"({"op":"shutdown"})").drain);
}

TEST(ServeProtocol, RejectsBadRequests) {
  EXPECT_EQ(parse_request("not json").op, Request::Op::Invalid);
  EXPECT_EQ(parse_request(R"({"op":"warp"})").op, Request::Op::Invalid);
  EXPECT_EQ(parse_request(R"({"op":"status"})").op, Request::Op::Invalid);
  // No input at all, two inputs, bad knobs.
  EXPECT_EQ(parse_request(R"({"op":"submit","job":{}})").op,
            Request::Op::Invalid);
  EXPECT_EQ(parse_request(R"({"op":"submit","job":{"phantom":"ball",)"
                          R"("input":"/x.mha"}})")
                .op,
            Request::Op::Invalid);
  EXPECT_EQ(parse_request(
                R"({"op":"submit","job":{"phantom":"ball","delta":-1}})")
                .op,
            Request::Op::Invalid);
  EXPECT_EQ(parse_request(
                R"({"op":"submit","job":{"phantom":"ball","cm":"chaos"}})")
                .op,
            Request::Op::Invalid);
  EXPECT_EQ(parse_request(R"({"op":"submit","priority":"urgent",)"
                          R"("job":{"phantom":"ball"}})")
                .op,
            Request::Op::Invalid);
}

TEST(ServeProtocol, DecodesInlineVolume) {
  const LabeledImage3D ball = phantom::ball(8);
  telemetry::JsonWriter w;
  w.begin_object()
      .key("volume")
      .begin_object()
      .kv("nx", ball.nx())
      .kv("ny", ball.ny())
      .kv("nz", ball.nz())
      .key("spacing")
      .begin_array()
      .value(0.5)
      .value(0.5)
      .value(2.0)
      .end_array()
      .kv("labels_b64",
          base64_encode(ball.raw().data(), ball.raw().size()))
      .end_object()
      .end_object();
  JobSpec spec;
  std::string err;
  ASSERT_TRUE(decode_job(json_parse(w.str()), &spec, &err)) << err;
  ASSERT_NE(spec.inline_image, nullptr);
  EXPECT_EQ(spec.inline_image->nx(), 8);
  EXPECT_EQ(spec.inline_image->spacing().z, 2.0);
  EXPECT_EQ(spec.inline_image->raw(), ball.raw());

  // A size mismatch between dims and payload is refused.
  JobSpec bad;
  ASSERT_FALSE(decode_job(
      json_parse(R"({"volume":{"nx":8,"ny":8,"nz":8,"labels_b64":"AAAA"}})"),
      &bad, &err));
}

TEST(ServeProtocol, InteriorKnobRoundTrip) {
  // The knob travels client -> JSON -> JobSpec -> per-job manifest.
  JobSpec spec;
  std::string err;
  ASSERT_TRUE(decode_job(
      json_parse(R"({"phantom":"ball","interior":"delaunay",)"
                 R"("lattice_spacing":3.5})"),
      &spec, &err))
      << err;
  EXPECT_EQ(spec.mesh.interior, InteriorFill::Delaunay);
  EXPECT_EQ(spec.mesh.lattice_spacing, 3.5);

  // Absent knob keeps the hybrid default.
  JobSpec dflt;
  ASSERT_TRUE(decode_job(json_parse(R"({"phantom":"ball"})"), &dflt, &err));
  EXPECT_EQ(dflt.mesh.interior, InteriorFill::Lattice);

  // Unknown fills and negative spacings are refused.
  JobSpec bad;
  EXPECT_FALSE(decode_job(
      json_parse(R"({"phantom":"ball","interior":"voronoi"})"), &bad, &err));
  EXPECT_NE(err.find("interior"), std::string::npos);
  EXPECT_FALSE(decode_job(
      json_parse(R"({"phantom":"ball","lattice_spacing":-1})"), &bad, &err));

  // A decoded spec carries the knob into the job's run manifest.
  spec.phantom = "ball";
  spec.phantom_size = 16;
  spec.mesh.delta = 1.5;
  spec.mesh.threads = 1;
  MeshJob job(std::move(spec));
  ASSERT_TRUE(job.run().ok) << job.artifacts().error;
  const JsonValue man =
      json_parse(job.build_manifest("serve_test").to_json(), &err);
  ASSERT_TRUE(man.is_object()) << err;
  EXPECT_EQ(man["config"]["interior"].as_string(), "delaunay");
}

// ---------- job queue ----------

TEST(ServeQueue, PriorityThenFifo) {
  JobQueue<int> q(16);
  using Push = JobQueue<int>::Push;
  EXPECT_EQ(q.try_push(1, Priority::Low), Push::Ok);
  EXPECT_EQ(q.try_push(2, Priority::Normal), Push::Ok);
  EXPECT_EQ(q.try_push(3, Priority::High), Push::Ok);
  EXPECT_EQ(q.try_push(4, Priority::High), Push::Ok);
  EXPECT_EQ(q.try_push(5, Priority::Normal), Push::Ok);
  q.close();
  std::vector<int> order;
  int v = 0;
  while (q.pop(&v)) order.push_back(v);
  EXPECT_EQ(order, (std::vector<int>{3, 4, 2, 5, 1}));
}

TEST(ServeQueue, BoundAndClose) {
  JobQueue<int> q(2);
  using Push = JobQueue<int>::Push;
  EXPECT_EQ(q.try_push(1, Priority::Normal), Push::Ok);
  EXPECT_EQ(q.try_push(2, Priority::High), Push::Ok);
  EXPECT_EQ(q.try_push(3, Priority::High), Push::Full);  // bound hit
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_TRUE(q.remove_if([](int x) { return x == 2; }));
  EXPECT_FALSE(q.remove_if([](int x) { return x == 99; }));
  EXPECT_EQ(q.depth(), 1u);
  q.close();
  EXPECT_EQ(q.try_push(4, Priority::Normal), Push::Closed);
  int v = 0;
  EXPECT_TRUE(q.pop(&v));  // close drains the backlog first
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(q.pop(&v));
}

TEST(ServeQueue, CloseAndClearReturnsBacklog) {
  JobQueue<int> q(8);
  q.try_push(1, Priority::Low);
  q.try_push(2, Priority::High);
  const auto dropped = q.close_and_clear();
  EXPECT_EQ(dropped.size(), 2u);
  int v = 0;
  EXPECT_FALSE(q.pop(&v));
}

// ---------- latency histogram ----------

TEST(ServeHistogram, PercentilesAreOrderedAndPlausible) {
  telemetry::LatencyHistogram h;
  for (int i = 0; i < 900; ++i) h.record_sec(1e-3);   // ~1 ms
  for (int i = 0; i < 100; ++i) h.record_sec(100e-3);  // ~100 ms tail
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.sum_sec, 0.9 + 10.0, 0.5);
  EXPECT_NEAR(s.max_sec, 0.1, 0.01);
  EXPECT_LE(s.p50_sec, s.p90_sec);
  EXPECT_LE(s.p90_sec, s.p95_sec);
  EXPECT_LE(s.p95_sec, s.p99_sec);
  EXPECT_GT(s.p50_sec, 0.5e-3);
  EXPECT_LT(s.p50_sec, 2e-3);
  EXPECT_GT(s.p99_sec, 50e-3);

  telemetry::MetricsRegistry reg;
  h.publish(reg, "serve.latency.mesh");
  EXPECT_EQ(reg.u64("serve.latency.mesh.count"), 1000u);
  EXPECT_GT(reg.f64("serve.latency.mesh.p99_sec"), 0.0);
}

// ---------- EDT cache ----------

TEST(ServeEdtCache, HitMissEvictionAndPinning) {
  const LabeledImage3D a = phantom::ball(24);
  const LabeledImage3D b = phantom::concentric_shells(24);
  // Budget fits exactly one 24^3 entry (7 bytes/voxel + slack).
  EdtCache cache(24 * 24 * 24 * 7 + 16384);

  bool hit = true;
  const auto ea = cache.acquire(a, 1, &hit);
  ASSERT_NE(ea, nullptr);
  EXPECT_FALSE(hit);
  ASSERT_NE(ea->oracle, nullptr);

  const auto ea2 = cache.acquire(a, 1, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(ea2.get(), ea.get());  // same pinned entry

  const auto eb = cache.acquire(b, 1, &hit);  // evicts a
  EXPECT_FALSE(hit);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 1u);

  // The evicted entry survives through its pin; content is still intact.
  EXPECT_EQ(ea->image.raw(), a.raw());
  const auto ea3 = cache.acquire(a, 1, &hit);  // recompute (and evict b)
  EXPECT_FALSE(hit);
  EXPECT_NE(ea3.get(), ea.get());
  EXPECT_EQ(image_content_hash(ea3->image), image_content_hash(ea->image));
}

TEST(ServeEdtCache, SingleFlightUnderConcurrentMisses) {
  const LabeledImage3D a = phantom::ball(28);
  EdtCache cache(std::size_t{64} << 20);
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  std::vector<std::shared_ptr<const EdtCache::Entry>> got(kThreads);
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] { got[i] = cache.acquire(a, 1); });
  }
  for (auto& t : ts) t.join();
  for (int i = 1; i < kThreads; ++i) {
    ASSERT_NE(got[i], nullptr);
    EXPECT_EQ(got[i].get(), got[0].get()) << "thread " << i;
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);  // exactly one compute
  EXPECT_EQ(st.hits + st.coalesced, kThreads - 1u);
}

// ---------- MeshJob pipeline ----------

JobSpec small_ball_spec(int size = 24, int threads = 1) {
  JobSpec spec;
  spec.phantom = "ball";
  spec.phantom_size = size;
  spec.mesh.threads = threads;
  return spec;
}

TEST(ServeMeshJob, RunsAndBuildsManifest) {
  MeshJob job(small_ball_spec());
  const JobArtifacts& art = job.run();
  ASSERT_TRUE(art.ok) << art.error;
  EXPECT_GT(art.mesh.num_tets(), 0u);
  EXPECT_TRUE(art.metrics.flag("refine.completed"));
  EXPECT_GT(art.metrics.u64("mesh.tets"), 0u);

  const telemetry::RunManifest man = job.build_manifest("serve_test");
  std::string err;
  const JsonValue parsed = json_parse(man.to_json(), &err);
  ASSERT_TRUE(parsed.is_object()) << err;
  EXPECT_EQ(parsed["schema"].as_string(), "pi2m-manifest");
  EXPECT_EQ(parsed["config"]["input"].as_string(), "phantom:ball");
  EXPECT_GT(parsed["metrics"]["mesh.tets"].as_int(), 0);
}

TEST(ServeMeshJob, PreSetCancelTokenAbortsRefinement) {
  std::atomic<bool> cancel{true};
  MeshJob job(small_ball_spec());
  job.set_cancel(&cancel);
  const JobArtifacts& art = job.run();
  EXPECT_FALSE(art.ok);
  EXPECT_TRUE(art.cancelled);
  EXPECT_TRUE(art.outcome.cancelled);
  EXPECT_FALSE(art.outcome.completed);
}

TEST(ServeMeshJob, InputErrorsAreReported) {
  JobSpec spec;
  spec.input_path = "/nonexistent/volume.mha";
  MeshJob job(std::move(spec));
  EXPECT_FALSE(job.prepare());
  EXPECT_NE(job.artifacts().error.find("failed to read"), std::string::npos);
}

// Satellite regression: meshing the same image twice in one process —
// second run on warm (recycled) arena blocks and a warm EDT cache — must
// produce exactly the mesh a fresh run produces.
TEST(ServeMeshJob, WarmArenaSecondRunIsByteIdentical) {
  const LabeledImage3D img = phantom::ball(24);
  // Single-threaded refinement is deterministic, so any divergence between
  // these runs is state leaking through the recycled arena blocks.
  // (Multi-threaded runs differ run-to-run by scheduling alone, which
  // would mask exactly the leak this test exists to catch.)
  auto run_once = [&](bool warm_arena) {
    RefinerOptions opt;
    opt.threads = 1;
    opt.rules.delta = 1.2;
    opt.rng_seed = 7;
    opt.warm_arena = warm_arena;
    Refiner r(img, opt);
    const RefineOutcome out = r.refine();
    EXPECT_TRUE(out.completed);
    return check::snapshot_hash(check::snapshot_mesh(r.mesh()));
  };
  const std::uint64_t fresh = run_once(false);
  const std::uint64_t warm1 = run_once(true);  // seeds the block pool
  const std::uint64_t warm2 = run_once(true);  // meshes on recycled blocks
  EXPECT_EQ(fresh, warm1);
  EXPECT_EQ(fresh, warm2);

  // The parallel path reuses blocks too; it cannot be byte-compared (the
  // speculative interleaving is nondeterministic) but must stay sound.
  RefinerOptions popt;
  popt.threads = 2;
  popt.rules.delta = 1.2;
  popt.warm_arena = true;
  Refiner pr(img, popt);
  EXPECT_TRUE(pr.refine().completed);
}

TEST(ServeMeshJob, WarmEdtCacheMatchesColdRun) {
  EdtCache cache(std::size_t{64} << 20);
  auto run = [&](bool use_cache) {
    MeshJob job(small_ball_spec());
    if (use_cache) job.set_edt_cache(&cache);
    const JobArtifacts& art = job.run();
    EXPECT_TRUE(art.ok) << art.error;
    return std::tuple<std::size_t, std::size_t, std::size_t, bool>(
        art.mesh.num_tets(), art.mesh.num_points(),
        art.mesh.boundary_tris.size(), art.edt_cache_hit);
  };
  const auto cold = run(false);
  const auto miss = run(true);
  const auto hit = run(true);
  EXPECT_FALSE(std::get<3>(cold));
  EXPECT_FALSE(std::get<3>(miss));
  EXPECT_TRUE(std::get<3>(hit));
  EXPECT_EQ(std::get<0>(cold), std::get<0>(miss));
  EXPECT_EQ(std::get<0>(cold), std::get<0>(hit));
  EXPECT_EQ(std::get<1>(cold), std::get<1>(hit));
  EXPECT_EQ(std::get<2>(cold), std::get<2>(hit));
}

// ---------- MeshService ----------

ServiceConfig small_config(int executors, std::size_t queue_cap) {
  ServiceConfig cfg;
  cfg.executors = executors;
  cfg.queue_capacity = queue_cap;
  cfg.default_threads = 1;
  cfg.edt_cache_bytes = std::size_t{64} << 20;
  return cfg;
}

/// Blocks the service's only executor until released.
struct ExecutorGate {
  std::promise<void> entered;
  std::promise<void> release;  // must precede release_future (init order)
  std::shared_future<void> release_future;
  ExecutorGate() : release_future(release.get_future().share()) {}
  std::function<void()> hook() {
    return [this] {
      entered.set_value();
      release_future.wait();
    };
  }
};

TEST(ServeService, OverloadIsRejectedExplicitly) {
  MeshService svc(small_config(/*executors=*/1, /*queue_cap=*/2));
  ExecutorGate gate;
  const auto blocker =
      svc.submit(small_ball_spec(16), Priority::Normal, gate.hook());
  ASSERT_TRUE(blocker.accepted);
  gate.entered.get_future().wait();  // executor is now held

  const auto q1 = svc.submit(small_ball_spec(16), Priority::Normal);
  const auto q2 = svc.submit(small_ball_spec(16), Priority::Normal);
  ASSERT_TRUE(q1.accepted);
  ASSERT_TRUE(q2.accepted);
  const auto over = svc.submit(small_ball_spec(16), Priority::High);
  EXPECT_FALSE(over.accepted);
  EXPECT_STREQ(over.reject_code, kRejectedOverload);

  gate.release.set_value();
  for (const auto id : {blocker.id, q1.id, q2.id}) {
    const auto rec = svc.wait(id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->current_state(), JobState::Done) << rec->error;
  }
  const auto reg = svc.metrics_snapshot();
  EXPECT_EQ(reg.u64("serve.jobs.accepted"), 3u);
  EXPECT_EQ(reg.u64("serve.jobs.rejected"), 1u);
  EXPECT_EQ(reg.u64("serve.jobs.completed"), 3u);
  EXPECT_EQ(reg.u64("serve.queue.depth"), 0u);
  EXPECT_EQ(reg.u64("serve.latency.mesh.count"), 3u);
  svc.drain();
  EXPECT_FALSE(svc.submit(small_ball_spec(16), Priority::Normal).accepted);
}

TEST(ServeService, CancelBeforeStart) {
  MeshService svc(small_config(1, 8));
  ExecutorGate gate;
  const auto blocker =
      svc.submit(small_ball_spec(16), Priority::Normal, gate.hook());
  ASSERT_TRUE(blocker.accepted);
  gate.entered.get_future().wait();

  const auto victim = svc.submit(small_ball_spec(16), Priority::Normal);
  ASSERT_TRUE(victim.accepted);
  EXPECT_TRUE(svc.cancel(victim.id));
  const auto rec = svc.wait(victim.id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->current_state(), JobState::Cancelled);
  EXPECT_EQ(rec->error, "cancelled before start");
  EXPECT_TRUE(rec->manifest_json.empty());  // never ran

  EXPECT_FALSE(svc.cancel(victim.id));       // already terminal
  EXPECT_FALSE(svc.cancel(999999));          // unknown id
  gate.release.set_value();
  svc.wait(blocker.id);
  EXPECT_EQ(svc.metrics_snapshot().u64("serve.jobs.cancelled"), 1u);
  svc.drain();
}

TEST(ServeService, CancelMidRefinement) {
  MeshService svc(small_config(1, 4));
  // Big enough that refinement runs for seconds: the cancel token lands
  // mid-refine at a loop boundary, long before completion.
  JobSpec spec = small_ball_spec(64, 2);
  spec.mesh.delta = 0.5;
  const auto sub = svc.submit(std::move(spec), Priority::Normal);
  ASSERT_TRUE(sub.accepted);
  const auto rec = svc.find(sub.id);
  ASSERT_NE(rec, nullptr);
  while (rec->current_state() == JobState::Queued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(rec->current_state(), JobState::Running);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(svc.cancel(sub.id));
  svc.wait(sub.id);
  EXPECT_EQ(rec->current_state(), JobState::Cancelled);
  EXPECT_FALSE(rec->manifest_json.empty());  // it ran; manifest records it
  const JsonValue man = json_parse(rec->manifest_json);
  EXPECT_TRUE(man["metrics"]["refine.cancelled"].as_bool());
  EXPECT_FALSE(man["metrics"]["refine.completed"].as_bool(true));
  svc.drain();
}

TEST(ServeService, ShutdownNowCancelsBacklog) {
  MeshService svc(small_config(1, 8));
  ExecutorGate gate;
  const auto blocker =
      svc.submit(small_ball_spec(16), Priority::Normal, gate.hook());
  ASSERT_TRUE(blocker.accepted);
  gate.entered.get_future().wait();
  const auto queued = svc.submit(small_ball_spec(16), Priority::Normal);
  ASSERT_TRUE(queued.accepted);

  gate.release.set_value();
  svc.shutdown_now();
  const auto rec = svc.find(queued.id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->current_state(), JobState::Cancelled);
}

// Cross-job isolation: concurrent jobs over shared caches and warm arenas
// must each produce exactly the mesh a solo run produces. Run under TSan
// via the `sanitize` label.
TEST(ServeService, ConcurrentSubmittersSeeIsolatedResults) {
  struct Reference {
    std::string phantom;
    int size;
    std::uint64_t tets, points, tris;
  };
  std::vector<Reference> refs = {{"ball", 24, 0, 0, 0},
                                 {"shells", 24, 0, 0, 0}};
  for (auto& r : refs) {
    JobSpec spec;
    spec.phantom = r.phantom;
    spec.phantom_size = r.size;
    spec.mesh.threads = 1;  // single-threaded refinement is deterministic
    MeshJob job(std::move(spec));
    const JobArtifacts& art = job.run();
    ASSERT_TRUE(art.ok) << art.error;
    r.tets = art.mesh.num_tets();
    r.points = art.mesh.num_points();
    r.tris = art.mesh.boundary_tris.size();
  }

  MeshService svc(small_config(/*executors=*/4, /*queue_cap=*/64));
  constexpr int kSubmitters = 4;
  constexpr int kJobsEach = 3;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint64_t>> ids(kSubmitters);
  threads.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kJobsEach; ++j) {
        const Reference& r = refs[(t + j) % refs.size()];
        JobSpec spec;
        spec.phantom = r.phantom;
        spec.phantom_size = r.size;
        spec.mesh.threads = 1;
        const auto res = svc.submit(std::move(spec), Priority::Normal);
        if (res.accepted) ids[t].push_back(res.id);
      }
    });
  }
  for (auto& t : threads) t.join();

  int checked = 0;
  for (int t = 0; t < kSubmitters; ++t) {
    for (std::size_t j = 0; j < ids[t].size(); ++j) {
      const auto rec = svc.wait(ids[t][j]);
      ASSERT_NE(rec, nullptr);
      ASSERT_EQ(rec->current_state(), JobState::Done) << rec->error;
      const Reference& r = refs[(t + static_cast<int>(j)) % refs.size()];
      const JsonValue man = json_parse(rec->manifest_json);
      ASSERT_TRUE(man.is_object());
      EXPECT_EQ(man["metrics"]["mesh.tets"].as_int(),
                static_cast<std::int64_t>(r.tets))
          << r.phantom;
      EXPECT_EQ(man["metrics"]["mesh.points"].as_int(),
                static_cast<std::int64_t>(r.points))
          << r.phantom;
      EXPECT_EQ(man["metrics"]["mesh.boundary_tris"].as_int(),
                static_cast<std::int64_t>(r.tris))
          << r.phantom;
      ++checked;
    }
  }
  EXPECT_EQ(checked, kSubmitters * kJobsEach);

  const auto reg = svc.metrics_snapshot();
  EXPECT_EQ(reg.u64("serve.jobs.completed"),
            static_cast<std::uint64_t>(checked));
  // Two distinct images, twelve jobs: the EDT ran at most a handful of
  // times (first miss per image, plus any concurrent-miss coalescing).
  EXPECT_GE(reg.u64("serve.edt_cache.hits") +
                reg.u64("serve.edt_cache.coalesced"),
            static_cast<std::uint64_t>(checked - 4));
  svc.drain();
}

// ---------- socket round-trip ----------

TEST(ServeSocket, FullProtocolRoundTrip) {
  const std::string sock =
      "/tmp/pi2m_serve_test_" + std::to_string(::getpid()) + ".sock";
  MeshService svc(small_config(2, 16));
  SocketServer server(svc, sock);
  ASSERT_TRUE(server.ok()) << server.error();
  std::thread loop([&] { server.serve(); });

  std::string resp, err;
  ASSERT_TRUE(request_over_socket(sock, R"({"op":"ping"})", &resp, &err))
      << err;
  EXPECT_TRUE(json_parse(resp)["ok"].as_bool());

  // Submit an inline volume (exercises base64 + image reconstruction).
  const LabeledImage3D ball = phantom::ball(16);
  telemetry::JsonWriter w;
  w.begin_object()
      .kv("op", "submit")
      .kv("priority", "high")
      .key("job")
      .begin_object()
      .key("volume")
      .begin_object()
      .kv("nx", 16)
      .kv("ny", 16)
      .kv("nz", 16)
      .kv("labels_b64",
          base64_encode(ball.raw().data(), ball.raw().size()))
      .end_object()
      .end_object()
      .end_object();
  ASSERT_TRUE(request_over_socket(sock, w.str(), &resp, &err)) << err;
  const JsonValue sub = json_parse(resp);
  ASSERT_TRUE(sub["ok"].as_bool()) << resp;
  const auto id = static_cast<std::uint64_t>(sub["id"].as_int());

  // Poll status to terminal; then the result carries the manifest.
  std::string state;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(request_over_socket(
        sock, R"({"op":"status","id":)" + std::to_string(id) + "}", &resp,
        &err))
        << err;
    state = json_parse(resp)["state"].as_string();
    if (state != "queued" && state != "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(state, "done");
  ASSERT_TRUE(request_over_socket(
      sock, R"({"op":"result","id":)" + std::to_string(id) + "}", &resp,
      &err))
      << err;
  const JsonValue result = json_parse(resp);
  ASSERT_TRUE(result["ok"].as_bool()) << resp;
  EXPECT_EQ(result["manifest"]["schema"].as_string(), "pi2m-manifest");
  EXPECT_GT(result["manifest"]["metrics"]["mesh.tets"].as_int(), 0);

  // Unknown id and premature result fetch produce protocol errors.
  ASSERT_TRUE(
      request_over_socket(sock, R"({"op":"result","id":424242})", &resp,
                          &err));
  EXPECT_EQ(json_parse(resp)["code"].as_string(), kNotFound);
  ASSERT_TRUE(request_over_socket(sock, R"({"op":"nope"})", &resp, &err));
  EXPECT_EQ(json_parse(resp)["code"].as_string(), kBadRequest);

  ASSERT_TRUE(request_over_socket(sock, R"({"op":"stats"})", &resp, &err));
  const JsonValue stats = json_parse(resp);
  EXPECT_GE(stats["metrics"]["serve.jobs.completed"].as_int(), 1);

  ASSERT_TRUE(request_over_socket(sock, R"({"op":"shutdown"})", &resp, &err));
  EXPECT_TRUE(json_parse(resp)["ok"].as_bool());
  loop.join();
  EXPECT_TRUE(server.drained());
  // After drain, the service refuses new work.
  EXPECT_FALSE(svc.submit(small_ball_spec(16), Priority::Normal).accepted);
}

}  // namespace
