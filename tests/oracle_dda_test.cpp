// Parity of the voxel-DDA oracle walks against the reference scalar
// sampling walks (imaging/isosurface.cpp). The DDA is exact per crossed
// voxel while the reference samples every 0.45·min_spacing, so the precise
// contract is:
//   * any transition the reference detects, the DDA detects at the same or
//     an earlier ray parameter (reference samples are a subset of the
//     continuum the DDA covers) — a DDA miss here is a hard failure;
//   * the DDA may additionally find genuine transitions the reference
//     stepped over (features thinner than the sampling step / corner
//     clips), verified by probing the labels on both sides of the hit;
//   * every hit either walk reports lies on a real label change.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "imaging/isosurface.hpp"
#include "imaging/phantom.hpp"

namespace pi2m {
namespace {

double t_of(const Vec3& a, const Vec3& b, const Vec3& hit) {
  const Vec3 dir = (b - a) / distance(a, b);
  return dot(hit - a, dir);
}

/// True when the label field really changes across `hit` along a→b.
bool genuine_crossing(const IsosurfaceOracle& o, const Vec3& a, const Vec3& b,
                      const Vec3& hit) {
  const Vec3 dir = (b - a) / distance(a, b);
  const double eps = 5e-3 * o.image().min_spacing();
  return o.label_at(hit - eps * dir) != o.label_at(hit + eps * dir);
}

/// Core parity assertion for one segment.
void check_segment(const IsosurfaceOracle& o, const Vec3& a, const Vec3& b,
                   int* ref_hits, int* extra_dda_hits) {
  const auto ref = o.segment_surface_intersection_reference(a, b);
  const auto dda = o.segment_surface_intersection(a, b);
  const double tol = 1e-3 * o.image().min_spacing();
  if (ref.has_value()) {
    ++*ref_hits;
    ASSERT_TRUE(dda.has_value())
        << "DDA missed a reference-detected crossing";
    EXPECT_LE(t_of(a, b, *dda), t_of(a, b, *ref) + tol)
        << "DDA hit later than the reference (not the first transition)";
    EXPECT_TRUE(genuine_crossing(o, a, b, *dda));
  } else if (dda.has_value()) {
    // Sub-step feature the reference stepped over: must be a real change.
    ++*extra_dda_hits;
    EXPECT_TRUE(genuine_crossing(o, a, b, *dda));
  }
}

class SegmentParity : public ::testing::TestWithParam<unsigned> {};

TEST_P(SegmentParity, RandomSegmentsOnBlobs) {
  const LabeledImage3D img = phantom::random_blobs(24, GetParam(), 3, 2);
  const IsosurfaceOracle oracle(img, 1);
  ASSERT_TRUE(oracle.uses_dda());
  std::mt19937 rng(GetParam() * 131 + 17);
  std::uniform_real_distribution<double> u(-3.0, 27.0);
  int ref_hits = 0, extra = 0;
  for (int i = 0; i < 500; ++i) {
    const Vec3 a{u(rng), u(rng), u(rng)}, b{u(rng), u(rng), u(rng)};
    check_segment(oracle, a, b, &ref_hits, &extra);
  }
  EXPECT_GT(ref_hits, 50);  // the sweep exercised real crossings
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentParity,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(OracleDda, AnisotropicSpacingParity) {
  const LabeledImage3D img =
      phantom::abdominal(32, 32, 32, /*spacing=*/{0.7, 1.0, 1.4});
  const IsosurfaceOracle oracle(img, 1);
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> ux(-2.0, 24.0);
  std::uniform_real_distribution<double> uy(-2.0, 34.0);
  std::uniform_real_distribution<double> uz(-2.0, 47.0);
  int ref_hits = 0, extra = 0;
  for (int i = 0; i < 400; ++i) {
    const Vec3 a{ux(rng), uy(rng), uz(rng)}, b{ux(rng), uy(rng), uz(rng)};
    check_segment(oracle, a, b, &ref_hits, &extra);
  }
  EXPECT_GT(ref_hits, 40);
}

TEST(OracleDda, AxisAlignedRaysAgreeTightly) {
  // Through-center axis rays on a ball phantom hit a well-separated
  // interface: both walks must refine to the same point.
  const LabeledImage3D img = phantom::ball(32);
  const IsosurfaceOracle oracle(img, 1);
  const Vec3 c = 0.5 * (img.bounds().lo + img.bounds().hi);
  const Vec3 dirs[6] = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                        {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
  for (const Vec3& d : dirs) {
    const Vec3 a = c;
    const Vec3 b = c + 40.0 * d;
    const auto ref = oracle.segment_surface_intersection_reference(a, b);
    const auto dda = oracle.segment_surface_intersection(a, b);
    ASSERT_TRUE(ref.has_value());
    ASSERT_TRUE(dda.has_value());
    EXPECT_LT(distance(*ref, *dda), 0.05 * img.min_spacing());
  }
}

TEST(OracleDda, SubVoxelAndDegenerateSegments) {
  const LabeledImage3D img = phantom::random_blobs(24, 7, 3, 2);
  const IsosurfaceOracle oracle(img, 1);
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> u(0.0, 24.0);
  std::uniform_real_distribution<double> tiny(-0.4, 0.4);
  int ref_hits = 0, extra = 0, found = 0;
  for (int i = 0; i < 3000; ++i) {
    const Vec3 a{u(rng), u(rng), u(rng)};
    const Vec3 b = a + Vec3{tiny(rng), tiny(rng), tiny(rng)};
    check_segment(oracle, a, b, &ref_hits, &extra);
    if (oracle.segment_surface_intersection(a, b).has_value()) ++found;
  }
  EXPECT_GT(found, 20);  // sub-voxel crossings were actually exercised

  // Zero-length segment: no transition by definition.
  const Vec3 p{12.0, 12.0, 12.0};
  EXPECT_FALSE(oracle.segment_surface_intersection(p, p).has_value());
  EXPECT_FALSE(
      oracle.segment_surface_intersection_reference(p, p).has_value());
}

TEST(OracleDda, SegmentsOutsideTheVolume) {
  const LabeledImage3D img = phantom::ball(24);
  const IsosurfaceOracle oracle(img, 1);
  // Entirely outside the slab (uniform background): never a transition.
  EXPECT_FALSE(oracle
                   .segment_surface_intersection({-30, -30, -30},
                                                 {-30, 60, -30})
                   .has_value());
  EXPECT_FALSE(
      oracle.segment_surface_intersection({-5, -5, -5}, {-6, 30, -5})
          .has_value());
  // Crossing the whole volume from outside to outside: enters the ball and
  // leaves it; the first transition is the entry interface.
  const auto hit =
      oracle.segment_surface_intersection({-10, 11.5, 11.5}, {40, 11.5, 11.5});
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(genuine_crossing(oracle, {-10, 11.5, 11.5}, {40, 11.5, 11.5},
                               *hit));
  // Segment ending inside the object from outside: endpoint label differs.
  const auto hit2 =
      oracle.segment_surface_intersection({-10, 11.5, 11.5}, {11.5, 11.5, 11.5});
  EXPECT_TRUE(hit2.has_value());
}

class ClosestPointParity : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClosestPointParity, DdaNeverFartherThanReference) {
  const LabeledImage3D img = phantom::random_blobs(24, GetParam() + 50, 3, 2);
  const IsosurfaceOracle oracle(img, 1);
  std::mt19937 rng(GetParam() * 7 + 1);
  std::uniform_real_distribution<double> u(-2.0, 26.0);
  const double tol = 2e-2 * img.min_spacing();
  int checked = 0;
  for (int i = 0; i < 400; ++i) {
    const Vec3 p{u(rng), u(rng), u(rng)};
    const auto dda = oracle.closest_surface_point(p);
    const auto ref = oracle.closest_surface_point_reference(p);
    ASSERT_EQ(dda.has_value(), ref.has_value());
    if (!dda.has_value()) continue;
    ++checked;
    const double d_dda = distance(p, *dda);
    const double d_ref = distance(p, *ref);
    // The DDA walks the same ray and finds the continuum-first transition:
    // it can only match the reference or beat it (thin features the
    // sampling walk stepped over); both fall back to the same
    // refine-around-voxel point when the ray has no transition at all.
    EXPECT_LE(d_dda, d_ref + tol)
        << "DDA closest point farther than reference at (" << p.x << ","
        << p.y << "," << p.z << ")";
  }
  EXPECT_GT(checked, 300);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosestPointParity,
                         ::testing::Values(1u, 2u, 3u));

TEST(OracleDda, ReferenceWalkSwitch) {
  const LabeledImage3D img = phantom::ball(16);
  IsosurfaceOracle oracle(img, 1);
  EXPECT_TRUE(oracle.uses_dda());
  oracle.set_use_dda(false);
  EXPECT_FALSE(oracle.uses_dda());
  // With DDA off the public entry points serve the reference walk.
  const Vec3 a{-5, 7.5, 7.5}, b{25, 7.5, 7.5};
  const auto pub = oracle.segment_surface_intersection(a, b);
  const auto ref = oracle.segment_surface_intersection_reference(a, b);
  ASSERT_EQ(pub.has_value(), ref.has_value());
  ASSERT_TRUE(pub.has_value());
  EXPECT_EQ(pub->x, ref->x);
  EXPECT_EQ(pub->y, ref->y);
  EXPECT_EQ(pub->z, ref->z);
}

}  // namespace
}  // namespace pi2m
