// Generation-tagged geometry cache (delaunay/geom_cache.hpp): unit tests of
// the tag protocol (staleness is detected, never trusted; older generations
// never displace newer entries) and the load-bearing coherence property —
// a classification served through the cache equals a fresh classification,
// including after randomized concurrent insert/remove churn that recycles
// cell slots under the cache's feet.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "core/rules.hpp"
#include "core/spatial_grid.hpp"
#include "delaunay/geom_cache.hpp"
#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "imaging/isosurface.hpp"
#include "imaging/phantom.hpp"

namespace pi2m {
namespace {

CellGeomCache::CoreView sample_view() {
  CellGeomCache::CoreView v;
  v.cs.valid = true;
  v.cs.center = {1.25, -2.5, 3.75};
  v.cs.radius2 = 6.0625;
  v.surf_lb = -0.375;
  v.inside = true;
  return v;
}

TEST(GeomCache, RoundTripAndGenerationMismatch) {
  CellGeomCache cache(1024);
  const CellGeomCache::CoreView in = sample_view();
  cache.store(7, 3, in);

  CellGeomCache::CoreView out;
  ASSERT_TRUE(cache.load(7, 3, out));
  EXPECT_TRUE(out.cs.valid);
  EXPECT_EQ(out.cs.center.x, in.cs.center.x);
  EXPECT_EQ(out.cs.center.y, in.cs.center.y);
  EXPECT_EQ(out.cs.center.z, in.cs.center.z);
  EXPECT_EQ(out.cs.radius2, in.cs.radius2);
  EXPECT_EQ(out.surf_lb, in.surf_lb);
  EXPECT_TRUE(out.inside);

  // A reader presenting any other generation must miss: stale entries are
  // detected, not consumed.
  EXPECT_FALSE(cache.load(7, 5, out));
  EXPECT_FALSE(cache.load(7, 1, out));
  // Untouched slots are empty.
  EXPECT_FALSE(cache.load(8, 3, out));
}

TEST(GeomCache, OlderGenerationNeverDisplacesNewer) {
  CellGeomCache cache(1024);
  CellGeomCache::CoreView newer = sample_view();
  cache.store(42, 9, newer);

  CellGeomCache::CoreView older = sample_view();
  older.cs.center = {99.0, 99.0, 99.0};
  older.inside = false;
  cache.store(42, 7, older);  // laggard thread with a stale generation

  CellGeomCache::CoreView out;
  EXPECT_FALSE(cache.load(42, 7, out));
  ASSERT_TRUE(cache.load(42, 9, out));
  EXPECT_EQ(out.cs.center.x, newer.cs.center.x);
  EXPECT_TRUE(out.inside);

  // Same generation re-store is a harmless no-op as well.
  cache.store(42, 9, older);
  ASSERT_TRUE(cache.load(42, 9, out));
  EXPECT_EQ(out.cs.center.x, newer.cs.center.x);
}

TEST(GeomCache, InvalidCircumsphereRoundTrips) {
  CellGeomCache cache(64);
  CellGeomCache::CoreView degenerate;  // cs.valid == false
  cache.store(3, 5, degenerate);
  CellGeomCache::CoreView out = sample_view();
  ASSERT_TRUE(cache.load(3, 5, out));
  EXPECT_FALSE(out.cs.valid);
}

TEST(GeomCache, ClosestPointMemoRoundTrip) {
  CellGeomCache cache(1024);
  const Vec3 p{0.5, 1.5, -2.5};
  cache.store_closest(11, 3, p);

  std::optional<Vec3> out;
  ASSERT_TRUE(cache.load_closest(11, 3, out));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->x, p.x);
  EXPECT_EQ(out->y, p.y);
  EXPECT_EQ(out->z, p.z);

  // nullopt (no surface) is a cacheable answer, distinct from "absent".
  cache.store_closest(12, 3, std::nullopt);
  out = p;
  ASSERT_TRUE(cache.load_closest(12, 3, out));
  EXPECT_FALSE(out.has_value());

  EXPECT_FALSE(cache.load_closest(11, 5, out));  // generation mismatch
  EXPECT_FALSE(cache.load_closest(13, 3, out));  // untouched slot

  // Monotonicity holds for the memo word too.
  cache.store_closest(11, 1, Vec3{9, 9, 9});
  ASSERT_TRUE(cache.load_closest(11, 3, out));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->x, p.x);
}

TEST(GeomCache, CountersAccumulate) {
  CellGeomCache cache(256);
  CellGeomCache::CoreView v = sample_view();
  std::optional<Vec3> csp;
  cache.store(1, 3, v);
  cache.store_closest(1, 3, Vec3{1, 2, 3});
  EXPECT_TRUE(cache.load(1, 3, v, /*tid=*/0));
  EXPECT_FALSE(cache.load(1, 5, v, /*tid=*/1));
  EXPECT_TRUE(cache.load_closest(1, 3, csp, /*tid=*/2));
  EXPECT_FALSE(cache.load_closest(2, 3, csp, /*tid=*/3));

  const CellGeomCache::CounterTotals t = cache.totals();
  EXPECT_EQ(t.hits, 1u);
  EXPECT_EQ(t.misses, 1u);
  EXPECT_EQ(t.csp_hits, 1u);
  EXPECT_EQ(t.csp_misses, 1u);
}

bool same_classification(const Classification& a, const Classification& b) {
  if (a.rule != b.rule) return false;
  if (a.rule == Rule::None) return true;
  return a.kind == b.kind && a.point.x == b.point.x && a.point.y == b.point.y &&
         a.point.z == b.point.z;
}

/// Coherence under concurrent slot recycling: worker threads churn the mesh
/// with randomized inserts/removes while classifying their fresh cells
/// through a shared cache (populating it under races); afterwards, on the
/// quiescent mesh, the cached classification of every alive cell must be
/// bit-identical to a cache-free classification. The iso grid stays empty so
/// classification is a pure function of cell + image (deterministic).
class CacheCoherence : public ::testing::TestWithParam<int> {};

TEST_P(CacheCoherence, CachedClassifyMatchesFresh) {
  const int kThreads = GetParam();
  const LabeledImage3D img = phantom::random_blobs(20, 77, 3, 2);
  const IsosurfaceOracle oracle(img, 1);
  const Aabb box = img.bounds().inflated(6.0);
  DelaunayMesh mesh(box, 1u << 16, 1u << 19);
  SpatialHashGrid iso_grid(box, 4.0);
  RefineRulesConfig cfg;
  cfg.delta = 2.0;
  CellGeomCache cache(mesh.cell_capacity());

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      OpScratch s;
      std::mt19937 rng(900 + t);
      std::uniform_real_distribution<double> u(1.0, 19.0);
      std::vector<VertexId> mine;
      CellId hint = 0;
      for (int i = 0; i < 400; ++i) {
        if (!mine.empty() && i % 3 == 2) {
          if (remove_vertex(mesh, mine.back(), t, s).status ==
              OpStatus::Success) {
            mine.pop_back();
          }
        } else {
          const OpResult r =
              insert_point(mesh, {u(rng), u(rng), u(rng)},
                           VertexKind::Circumcenter, hint, t, s);
          if (r.status == OpStatus::Success) {
            mine.push_back(r.new_vertex);
            hint = s.created.front();
          } else if (r.status == OpStatus::Conflict) {
            std::this_thread::yield();
            continue;
          }
        }
        // Classify the freshly created cells through the shared cache:
        // this races with other threads retiring/recycling those slots,
        // which is exactly what the generation tags must survive.
        for (const CellId c : s.created) {
          (void)classify_cell(mesh, c, oracle, iso_grid, cfg, &cache, t);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  ASSERT_EQ(mesh.check_integrity(/*check_delaunay=*/false), "");

  int checked = 0;
  mesh.for_each_alive_cell([&](CellId c) {
    const Classification fresh =
        classify_cell(mesh, c, oracle, iso_grid, cfg);
    // First cached pass may hit entries published during the churn; the
    // second is guaranteed warm. Both must agree with the fresh result.
    const Classification cached1 =
        classify_cell(mesh, c, oracle, iso_grid, cfg, &cache, 0);
    const Classification cached2 =
        classify_cell(mesh, c, oracle, iso_grid, cfg, &cache, 0);
    EXPECT_TRUE(same_classification(cached1, fresh))
        << "cell " << c << ": cached rule " << to_string(cached1.rule)
        << " vs fresh " << to_string(fresh.rule);
    EXPECT_TRUE(same_classification(cached2, fresh))
        << "cell " << c << " (warm pass)";
    ++checked;
  });
  EXPECT_GT(checked, 200);

  const CellGeomCache::CounterTotals totals = cache.totals();
  EXPECT_GT(totals.hits + totals.misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, CacheCoherence,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace pi2m
