# Empty compiler generated dependencies file for imaging_test.
# This may be replaced when dependencies are built.
