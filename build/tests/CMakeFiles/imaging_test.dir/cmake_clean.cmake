file(REMOVE_RECURSE
  "CMakeFiles/imaging_test.dir/imaging_test.cpp.o"
  "CMakeFiles/imaging_test.dir/imaging_test.cpp.o.d"
  "imaging_test"
  "imaging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
