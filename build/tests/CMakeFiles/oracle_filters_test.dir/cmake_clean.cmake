file(REMOVE_RECURSE
  "CMakeFiles/oracle_filters_test.dir/oracle_filters_test.cpp.o"
  "CMakeFiles/oracle_filters_test.dir/oracle_filters_test.cpp.o.d"
  "oracle_filters_test"
  "oracle_filters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
