# Empty dependencies file for oracle_filters_test.
# This may be replaced when dependencies are built.
