file(REMOVE_RECURSE
  "CMakeFiles/refiner_test.dir/refiner_test.cpp.o"
  "CMakeFiles/refiner_test.dir/refiner_test.cpp.o.d"
  "refiner_test"
  "refiner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
