# Empty dependencies file for delaunay_test.
# This may be replaced when dependencies are built.
