file(REMOVE_RECURSE
  "CMakeFiles/delaunay_test.dir/delaunay_test.cpp.o"
  "CMakeFiles/delaunay_test.dir/delaunay_test.cpp.o.d"
  "delaunay_test"
  "delaunay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delaunay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
