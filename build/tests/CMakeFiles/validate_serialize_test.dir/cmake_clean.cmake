file(REMOVE_RECURSE
  "CMakeFiles/validate_serialize_test.dir/validate_serialize_test.cpp.o"
  "CMakeFiles/validate_serialize_test.dir/validate_serialize_test.cpp.o.d"
  "validate_serialize_test"
  "validate_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
