# Empty dependencies file for validate_serialize_test.
# This may be replaced when dependencies are built.
