file(REMOVE_RECURSE
  "CMakeFiles/predicates_test.dir/predicates_test.cpp.o"
  "CMakeFiles/predicates_test.dir/predicates_test.cpp.o.d"
  "predicates_test"
  "predicates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
