file(REMOVE_RECURSE
  "CMakeFiles/fem_test.dir/fem_test.cpp.o"
  "CMakeFiles/fem_test.dir/fem_test.cpp.o.d"
  "fem_test"
  "fem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
