# Empty dependencies file for pi2m_cli.
# This may be replaced when dependencies are built.
