file(REMOVE_RECURSE
  "CMakeFiles/pi2m_cli.dir/pi2m_cli.cpp.o"
  "CMakeFiles/pi2m_cli.dir/pi2m_cli.cpp.o.d"
  "pi2m"
  "pi2m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
