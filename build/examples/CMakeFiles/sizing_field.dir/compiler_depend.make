# Empty compiler generated dependencies file for sizing_field.
# This may be replaced when dependencies are built.
