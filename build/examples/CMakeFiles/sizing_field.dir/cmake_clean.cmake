file(REMOVE_RECURSE
  "CMakeFiles/sizing_field.dir/sizing_field.cpp.o"
  "CMakeFiles/sizing_field.dir/sizing_field.cpp.o.d"
  "sizing_field"
  "sizing_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizing_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
