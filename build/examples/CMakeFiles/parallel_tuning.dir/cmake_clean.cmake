file(REMOVE_RECURSE
  "CMakeFiles/parallel_tuning.dir/parallel_tuning.cpp.o"
  "CMakeFiles/parallel_tuning.dir/parallel_tuning.cpp.o.d"
  "parallel_tuning"
  "parallel_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
