# Empty dependencies file for parallel_tuning.
# This may be replaced when dependencies are built.
