file(REMOVE_RECURSE
  "CMakeFiles/fe_laplace.dir/fe_laplace.cpp.o"
  "CMakeFiles/fe_laplace.dir/fe_laplace.cpp.o.d"
  "fe_laplace"
  "fe_laplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fe_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
