# Empty dependencies file for fe_laplace.
# This may be replaced when dependencies are built.
