# Empty dependencies file for multitissue.
# This may be replaced when dependencies are built.
