file(REMOVE_RECURSE
  "CMakeFiles/multitissue.dir/multitissue.cpp.o"
  "CMakeFiles/multitissue.dir/multitissue.cpp.o.d"
  "multitissue"
  "multitissue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitissue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
