# Empty dependencies file for bench_table4_weak.
# This may be replaced when dependencies are built.
