file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_weak.dir/bench_table4_weak.cpp.o"
  "CMakeFiles/bench_table4_weak.dir/bench_table4_weak.cpp.o.d"
  "bench_table4_weak"
  "bench_table4_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
