file(REMOVE_RECURSE
  "CMakeFiles/bench_fig789_meshes.dir/bench_fig789_meshes.cpp.o"
  "CMakeFiles/bench_fig789_meshes.dir/bench_fig789_meshes.cpp.o.d"
  "bench_fig789_meshes"
  "bench_fig789_meshes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig789_meshes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
