# Empty compiler generated dependencies file for bench_fig789_meshes.
# This may be replaced when dependencies are built.
