file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_single.dir/bench_table6_single.cpp.o"
  "CMakeFiles/bench_table6_single.dir/bench_table6_single.cpp.o.d"
  "bench_table6_single"
  "bench_table6_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
