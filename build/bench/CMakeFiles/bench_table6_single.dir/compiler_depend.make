# Empty compiler generated dependencies file for bench_table6_single.
# This may be replaced when dependencies are built.
