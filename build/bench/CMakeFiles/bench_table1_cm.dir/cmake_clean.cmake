file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cm.dir/bench_table1_cm.cpp.o"
  "CMakeFiles/bench_table1_cm.dir/bench_table1_cm.cpp.o.d"
  "bench_table1_cm"
  "bench_table1_cm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
