file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_ht.dir/bench_table5_ht.cpp.o"
  "CMakeFiles/bench_table5_ht.dir/bench_table5_ht.cpp.o.d"
  "bench_table5_ht"
  "bench_table5_ht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_ht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
