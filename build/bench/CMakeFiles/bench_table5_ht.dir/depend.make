# Empty dependencies file for bench_table5_ht.
# This may be replaced when dependencies are built.
