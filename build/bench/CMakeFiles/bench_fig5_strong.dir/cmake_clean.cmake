file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_strong.dir/bench_fig5_strong.cpp.o"
  "CMakeFiles/bench_fig5_strong.dir/bench_fig5_strong.cpp.o.d"
  "bench_fig5_strong"
  "bench_fig5_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
