# Empty dependencies file for bench_fig5_strong.
# This may be replaced when dependencies are built.
