file(REMOVE_RECURSE
  "libpi2m_fem.a"
)
