# Empty compiler generated dependencies file for pi2m_fem.
# This may be replaced when dependencies are built.
