file(REMOVE_RECURSE
  "CMakeFiles/pi2m_fem.dir/fem/laplace.cpp.o"
  "CMakeFiles/pi2m_fem.dir/fem/laplace.cpp.o.d"
  "libpi2m_fem.a"
  "libpi2m_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
