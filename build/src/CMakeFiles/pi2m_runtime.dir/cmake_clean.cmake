file(REMOVE_RECURSE
  "CMakeFiles/pi2m_runtime.dir/runtime/contention.cpp.o"
  "CMakeFiles/pi2m_runtime.dir/runtime/contention.cpp.o.d"
  "CMakeFiles/pi2m_runtime.dir/runtime/stats.cpp.o"
  "CMakeFiles/pi2m_runtime.dir/runtime/stats.cpp.o.d"
  "CMakeFiles/pi2m_runtime.dir/runtime/topology.cpp.o"
  "CMakeFiles/pi2m_runtime.dir/runtime/topology.cpp.o.d"
  "CMakeFiles/pi2m_runtime.dir/runtime/workstealing.cpp.o"
  "CMakeFiles/pi2m_runtime.dir/runtime/workstealing.cpp.o.d"
  "libpi2m_runtime.a"
  "libpi2m_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
