
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/contention.cpp" "src/CMakeFiles/pi2m_runtime.dir/runtime/contention.cpp.o" "gcc" "src/CMakeFiles/pi2m_runtime.dir/runtime/contention.cpp.o.d"
  "/root/repo/src/runtime/stats.cpp" "src/CMakeFiles/pi2m_runtime.dir/runtime/stats.cpp.o" "gcc" "src/CMakeFiles/pi2m_runtime.dir/runtime/stats.cpp.o.d"
  "/root/repo/src/runtime/topology.cpp" "src/CMakeFiles/pi2m_runtime.dir/runtime/topology.cpp.o" "gcc" "src/CMakeFiles/pi2m_runtime.dir/runtime/topology.cpp.o.d"
  "/root/repo/src/runtime/workstealing.cpp" "src/CMakeFiles/pi2m_runtime.dir/runtime/workstealing.cpp.o" "gcc" "src/CMakeFiles/pi2m_runtime.dir/runtime/workstealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
