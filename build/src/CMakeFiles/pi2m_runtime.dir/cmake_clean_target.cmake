file(REMOVE_RECURSE
  "libpi2m_runtime.a"
)
