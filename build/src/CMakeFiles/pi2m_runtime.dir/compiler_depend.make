# Empty compiler generated dependencies file for pi2m_runtime.
# This may be replaced when dependencies are built.
