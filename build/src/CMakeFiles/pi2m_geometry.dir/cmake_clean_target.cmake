file(REMOVE_RECURSE
  "libpi2m_geometry.a"
)
