file(REMOVE_RECURSE
  "CMakeFiles/pi2m_geometry.dir/geometry/tetra.cpp.o"
  "CMakeFiles/pi2m_geometry.dir/geometry/tetra.cpp.o.d"
  "libpi2m_geometry.a"
  "libpi2m_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
