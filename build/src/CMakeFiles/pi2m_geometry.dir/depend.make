# Empty dependencies file for pi2m_geometry.
# This may be replaced when dependencies are built.
