# Empty dependencies file for pi2m_predicates.
# This may be replaced when dependencies are built.
