file(REMOVE_RECURSE
  "libpi2m_predicates.a"
)
