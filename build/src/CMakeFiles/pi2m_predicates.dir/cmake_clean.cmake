file(REMOVE_RECURSE
  "CMakeFiles/pi2m_predicates.dir/predicates/expansion.cpp.o"
  "CMakeFiles/pi2m_predicates.dir/predicates/expansion.cpp.o.d"
  "CMakeFiles/pi2m_predicates.dir/predicates/predicates.cpp.o"
  "CMakeFiles/pi2m_predicates.dir/predicates/predicates.cpp.o.d"
  "libpi2m_predicates.a"
  "libpi2m_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
