
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predicates/expansion.cpp" "src/CMakeFiles/pi2m_predicates.dir/predicates/expansion.cpp.o" "gcc" "src/CMakeFiles/pi2m_predicates.dir/predicates/expansion.cpp.o.d"
  "/root/repo/src/predicates/predicates.cpp" "src/CMakeFiles/pi2m_predicates.dir/predicates/predicates.cpp.o" "gcc" "src/CMakeFiles/pi2m_predicates.dir/predicates/predicates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
