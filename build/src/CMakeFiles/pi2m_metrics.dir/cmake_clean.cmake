file(REMOVE_RECURSE
  "CMakeFiles/pi2m_metrics.dir/metrics/hausdorff.cpp.o"
  "CMakeFiles/pi2m_metrics.dir/metrics/hausdorff.cpp.o.d"
  "CMakeFiles/pi2m_metrics.dir/metrics/quality.cpp.o"
  "CMakeFiles/pi2m_metrics.dir/metrics/quality.cpp.o.d"
  "libpi2m_metrics.a"
  "libpi2m_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
