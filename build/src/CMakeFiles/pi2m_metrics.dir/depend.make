# Empty dependencies file for pi2m_metrics.
# This may be replaced when dependencies are built.
