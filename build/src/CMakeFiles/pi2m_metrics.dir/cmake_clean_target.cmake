file(REMOVE_RECURSE
  "libpi2m_metrics.a"
)
