file(REMOVE_RECURSE
  "CMakeFiles/pi2m_baselines.dir/baselines/plc_mesher.cpp.o"
  "CMakeFiles/pi2m_baselines.dir/baselines/plc_mesher.cpp.o.d"
  "CMakeFiles/pi2m_baselines.dir/baselines/seq_mesher.cpp.o"
  "CMakeFiles/pi2m_baselines.dir/baselines/seq_mesher.cpp.o.d"
  "libpi2m_baselines.a"
  "libpi2m_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
