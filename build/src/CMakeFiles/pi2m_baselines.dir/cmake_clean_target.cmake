file(REMOVE_RECURSE
  "libpi2m_baselines.a"
)
