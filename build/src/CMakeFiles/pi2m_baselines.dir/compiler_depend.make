# Empty compiler generated dependencies file for pi2m_baselines.
# This may be replaced when dependencies are built.
