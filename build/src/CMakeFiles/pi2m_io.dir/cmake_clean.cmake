file(REMOVE_RECURSE
  "CMakeFiles/pi2m_io.dir/io/image_io.cpp.o"
  "CMakeFiles/pi2m_io.dir/io/image_io.cpp.o.d"
  "CMakeFiles/pi2m_io.dir/io/mesh_serialize.cpp.o"
  "CMakeFiles/pi2m_io.dir/io/mesh_serialize.cpp.o.d"
  "CMakeFiles/pi2m_io.dir/io/tables.cpp.o"
  "CMakeFiles/pi2m_io.dir/io/tables.cpp.o.d"
  "CMakeFiles/pi2m_io.dir/io/writers.cpp.o"
  "CMakeFiles/pi2m_io.dir/io/writers.cpp.o.d"
  "libpi2m_io.a"
  "libpi2m_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
