# Empty dependencies file for pi2m_io.
# This may be replaced when dependencies are built.
