file(REMOVE_RECURSE
  "libpi2m_io.a"
)
