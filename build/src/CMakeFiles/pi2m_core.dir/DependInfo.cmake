
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/pi2m.cpp" "src/CMakeFiles/pi2m_core.dir/core/pi2m.cpp.o" "gcc" "src/CMakeFiles/pi2m_core.dir/core/pi2m.cpp.o.d"
  "/root/repo/src/core/refiner.cpp" "src/CMakeFiles/pi2m_core.dir/core/refiner.cpp.o" "gcc" "src/CMakeFiles/pi2m_core.dir/core/refiner.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/CMakeFiles/pi2m_core.dir/core/rules.cpp.o" "gcc" "src/CMakeFiles/pi2m_core.dir/core/rules.cpp.o.d"
  "/root/repo/src/core/sizing.cpp" "src/CMakeFiles/pi2m_core.dir/core/sizing.cpp.o" "gcc" "src/CMakeFiles/pi2m_core.dir/core/sizing.cpp.o.d"
  "/root/repo/src/core/smoothing.cpp" "src/CMakeFiles/pi2m_core.dir/core/smoothing.cpp.o" "gcc" "src/CMakeFiles/pi2m_core.dir/core/smoothing.cpp.o.d"
  "/root/repo/src/core/spatial_grid.cpp" "src/CMakeFiles/pi2m_core.dir/core/spatial_grid.cpp.o" "gcc" "src/CMakeFiles/pi2m_core.dir/core/spatial_grid.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/CMakeFiles/pi2m_core.dir/core/validate.cpp.o" "gcc" "src/CMakeFiles/pi2m_core.dir/core/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pi2m_delaunay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pi2m_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pi2m_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pi2m_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pi2m_predicates.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
