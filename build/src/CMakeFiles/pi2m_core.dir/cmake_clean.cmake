file(REMOVE_RECURSE
  "CMakeFiles/pi2m_core.dir/core/pi2m.cpp.o"
  "CMakeFiles/pi2m_core.dir/core/pi2m.cpp.o.d"
  "CMakeFiles/pi2m_core.dir/core/refiner.cpp.o"
  "CMakeFiles/pi2m_core.dir/core/refiner.cpp.o.d"
  "CMakeFiles/pi2m_core.dir/core/rules.cpp.o"
  "CMakeFiles/pi2m_core.dir/core/rules.cpp.o.d"
  "CMakeFiles/pi2m_core.dir/core/sizing.cpp.o"
  "CMakeFiles/pi2m_core.dir/core/sizing.cpp.o.d"
  "CMakeFiles/pi2m_core.dir/core/smoothing.cpp.o"
  "CMakeFiles/pi2m_core.dir/core/smoothing.cpp.o.d"
  "CMakeFiles/pi2m_core.dir/core/spatial_grid.cpp.o"
  "CMakeFiles/pi2m_core.dir/core/spatial_grid.cpp.o.d"
  "CMakeFiles/pi2m_core.dir/core/validate.cpp.o"
  "CMakeFiles/pi2m_core.dir/core/validate.cpp.o.d"
  "libpi2m_core.a"
  "libpi2m_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
