file(REMOVE_RECURSE
  "libpi2m_core.a"
)
