# Empty dependencies file for pi2m_core.
# This may be replaced when dependencies are built.
