# Empty dependencies file for pi2m_imaging.
# This may be replaced when dependencies are built.
