file(REMOVE_RECURSE
  "CMakeFiles/pi2m_imaging.dir/imaging/edt.cpp.o"
  "CMakeFiles/pi2m_imaging.dir/imaging/edt.cpp.o.d"
  "CMakeFiles/pi2m_imaging.dir/imaging/image3d.cpp.o"
  "CMakeFiles/pi2m_imaging.dir/imaging/image3d.cpp.o.d"
  "CMakeFiles/pi2m_imaging.dir/imaging/isosurface.cpp.o"
  "CMakeFiles/pi2m_imaging.dir/imaging/isosurface.cpp.o.d"
  "CMakeFiles/pi2m_imaging.dir/imaging/phantom.cpp.o"
  "CMakeFiles/pi2m_imaging.dir/imaging/phantom.cpp.o.d"
  "CMakeFiles/pi2m_imaging.dir/imaging/resample.cpp.o"
  "CMakeFiles/pi2m_imaging.dir/imaging/resample.cpp.o.d"
  "libpi2m_imaging.a"
  "libpi2m_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
