
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imaging/edt.cpp" "src/CMakeFiles/pi2m_imaging.dir/imaging/edt.cpp.o" "gcc" "src/CMakeFiles/pi2m_imaging.dir/imaging/edt.cpp.o.d"
  "/root/repo/src/imaging/image3d.cpp" "src/CMakeFiles/pi2m_imaging.dir/imaging/image3d.cpp.o" "gcc" "src/CMakeFiles/pi2m_imaging.dir/imaging/image3d.cpp.o.d"
  "/root/repo/src/imaging/isosurface.cpp" "src/CMakeFiles/pi2m_imaging.dir/imaging/isosurface.cpp.o" "gcc" "src/CMakeFiles/pi2m_imaging.dir/imaging/isosurface.cpp.o.d"
  "/root/repo/src/imaging/phantom.cpp" "src/CMakeFiles/pi2m_imaging.dir/imaging/phantom.cpp.o" "gcc" "src/CMakeFiles/pi2m_imaging.dir/imaging/phantom.cpp.o.d"
  "/root/repo/src/imaging/resample.cpp" "src/CMakeFiles/pi2m_imaging.dir/imaging/resample.cpp.o" "gcc" "src/CMakeFiles/pi2m_imaging.dir/imaging/resample.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pi2m_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pi2m_predicates.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
