file(REMOVE_RECURSE
  "libpi2m_imaging.a"
)
