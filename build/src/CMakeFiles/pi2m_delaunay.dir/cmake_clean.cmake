file(REMOVE_RECURSE
  "CMakeFiles/pi2m_delaunay.dir/delaunay/insert.cpp.o"
  "CMakeFiles/pi2m_delaunay.dir/delaunay/insert.cpp.o.d"
  "CMakeFiles/pi2m_delaunay.dir/delaunay/local_dt.cpp.o"
  "CMakeFiles/pi2m_delaunay.dir/delaunay/local_dt.cpp.o.d"
  "CMakeFiles/pi2m_delaunay.dir/delaunay/locate.cpp.o"
  "CMakeFiles/pi2m_delaunay.dir/delaunay/locate.cpp.o.d"
  "CMakeFiles/pi2m_delaunay.dir/delaunay/mesh.cpp.o"
  "CMakeFiles/pi2m_delaunay.dir/delaunay/mesh.cpp.o.d"
  "CMakeFiles/pi2m_delaunay.dir/delaunay/remove.cpp.o"
  "CMakeFiles/pi2m_delaunay.dir/delaunay/remove.cpp.o.d"
  "libpi2m_delaunay.a"
  "libpi2m_delaunay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi2m_delaunay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
