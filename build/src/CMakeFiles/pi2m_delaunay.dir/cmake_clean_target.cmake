file(REMOVE_RECURSE
  "libpi2m_delaunay.a"
)
