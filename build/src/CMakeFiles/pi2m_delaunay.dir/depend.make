# Empty dependencies file for pi2m_delaunay.
# This may be replaced when dependencies are built.
