
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/delaunay/insert.cpp" "src/CMakeFiles/pi2m_delaunay.dir/delaunay/insert.cpp.o" "gcc" "src/CMakeFiles/pi2m_delaunay.dir/delaunay/insert.cpp.o.d"
  "/root/repo/src/delaunay/local_dt.cpp" "src/CMakeFiles/pi2m_delaunay.dir/delaunay/local_dt.cpp.o" "gcc" "src/CMakeFiles/pi2m_delaunay.dir/delaunay/local_dt.cpp.o.d"
  "/root/repo/src/delaunay/locate.cpp" "src/CMakeFiles/pi2m_delaunay.dir/delaunay/locate.cpp.o" "gcc" "src/CMakeFiles/pi2m_delaunay.dir/delaunay/locate.cpp.o.d"
  "/root/repo/src/delaunay/mesh.cpp" "src/CMakeFiles/pi2m_delaunay.dir/delaunay/mesh.cpp.o" "gcc" "src/CMakeFiles/pi2m_delaunay.dir/delaunay/mesh.cpp.o.d"
  "/root/repo/src/delaunay/remove.cpp" "src/CMakeFiles/pi2m_delaunay.dir/delaunay/remove.cpp.o" "gcc" "src/CMakeFiles/pi2m_delaunay.dir/delaunay/remove.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pi2m_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pi2m_predicates.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
