// pi2m_submit — protocol client for the pi2m_serve daemon.
//
// One invocation, one request: submit a meshing job (optionally waiting
// for its result), or poll/cancel/inspect by id. Talks the newline-
// delimited JSON protocol of serve/protocol.hpp over the daemon's AF_UNIX
// socket and prints the raw JSON response, so scripts can pipe it
// straight into a JSON parser.
//
// Examples:
//   pi2m_submit --socket /tmp/pi2m.sock --phantom ball --size 48 --wait
//   pi2m_submit --socket /tmp/pi2m.sock --status 3
//   pi2m_submit --socket /tmp/pi2m.sock --cancel 3
//   pi2m_submit --socket /tmp/pi2m.sock --stats
//   pi2m_submit --socket /tmp/pi2m.sock --shutdown
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/server.hpp"
#include "telemetry/json_writer.hpp"

namespace {

void usage() {
  std::puts(
      "pi2m_submit - client for the pi2m_serve daemon\n"
      "\n"
      "connection:\n"
      "  --socket PATH           daemon socket (required)\n"
      "\n"
      "actions (default: submit a job):\n"
      "  --ping                  liveness check\n"
      "  --status ID             one job's state\n"
      "  --cancel ID             request cancellation\n"
      "  --result ID             fetch a finished job's manifest\n"
      "  --stats                 serve.* metrics snapshot\n"
      "  --shutdown              graceful drain (--shutdown-now: cancel all)\n"
      "\n"
      "submit:\n"
      "  --input FILE.mha | --phantom NAME [--size N]\n"
      "  --priority P            high|normal|low (default normal)\n"
      "  --delta D --rho R --facet-angle A --uniform-size S\n"
      "  --interior M            lattice|delaunay (default lattice)\n"
      "  --lattice-spacing A     BCC cube size override (0 = auto)\n"
      "  --downsample F --crop-foreground PAD\n"
      "  --threads T --cm NAME --lb NAME --smooth N\n"
      "  --report --validate     include quality / validation metrics\n"
      "  --out FILE              output mesh path on the daemon host\n"
      "                          (repeatable; .vtk|.off|.mesh|.stl|.p2m)\n"
      "  --wait                  poll until the job finishes, print the\n"
      "                          result response, exit non-zero on failure\n");
}

struct Action {
  std::string socket;
  std::string op;  // "" = submit
  std::uint64_t id = 0;
  bool wait = false;
  std::string priority;
  // Job fields are collected as raw strings and emitted as typed JSON.
  std::string input, phantom, cm, lb, interior;
  int size = 0, downsample = 0, crop_pad = -1, threads = 0, smooth = 0;
  double delta = 0, rho = 0, facet_angle = 0, uniform_size = 0;
  double lattice_spacing = 0;
  bool report = false, validate = false;
  std::vector<std::string> outs;
};

std::string build_request(const Action& a) {
  pi2m::telemetry::JsonWriter w;
  w.begin_object();
  if (!a.op.empty()) {
    if (a.op == "shutdown_now") {
      w.kv("op", "shutdown").kv("mode", "now");
    } else {
      w.kv("op", a.op);
      if (a.op == "status" || a.op == "cancel" || a.op == "result") {
        w.kv("id", a.id);
      }
    }
    w.end_object();
    return w.str();
  }
  w.kv("op", "submit");
  if (!a.priority.empty()) w.kv("priority", a.priority);
  w.key("job").begin_object();
  if (!a.input.empty()) w.kv("input", a.input);
  if (!a.phantom.empty()) w.kv("phantom", a.phantom);
  if (a.size > 0) w.kv("size", a.size);
  if (a.downsample > 1) w.kv("downsample", a.downsample);
  if (a.crop_pad >= 0) w.kv("crop_pad", a.crop_pad);
  if (a.delta > 0) w.kv("delta", a.delta);
  if (a.rho > 0) w.kv("rho", a.rho);
  if (a.facet_angle > 0) w.kv("facet_angle", a.facet_angle);
  if (a.uniform_size > 0) w.kv("uniform_size", a.uniform_size);
  if (a.threads > 0) w.kv("threads", a.threads);
  if (!a.interior.empty()) w.kv("interior", a.interior);
  if (a.lattice_spacing > 0) w.kv("lattice_spacing", a.lattice_spacing);
  if (!a.cm.empty()) w.kv("cm", a.cm);
  if (!a.lb.empty()) w.kv("lb", a.lb);
  if (a.smooth > 0) w.kv("smooth", a.smooth);
  if (a.report) w.kv("report", true);
  if (a.validate) w.kv("validate", true);
  if (!a.outs.empty()) {
    w.key("outputs").begin_array();
    for (const auto& o : a.outs) w.value(o);
    w.end_array();
  }
  w.end_object().end_object();
  return w.str();
}

/// One round-trip; prints the response line. Returns the parsed response
/// (null on transport failure, with exit diagnostics already printed).
pi2m::serve::JsonValue roundtrip(const std::string& socket,
                                 const std::string& request, bool quiet) {
  std::string response, error;
  if (!pi2m::serve::request_over_socket(socket, request, &response, &error)) {
    std::fprintf(stderr, "pi2m_submit: %s\n", error.c_str());
    return {};
  }
  if (!quiet) std::printf("%s\n", response.c_str());
  std::string perr;
  pi2m::serve::JsonValue v = pi2m::serve::json_parse(response, &perr);
  if (!v.is_object()) {
    std::fprintf(stderr, "pi2m_submit: bad response: %s\n", perr.c_str());
    return {};
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Action a;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--help" || key == "-h") {
      usage();
      return 0;
    } else if (key == "--socket") {
      a.socket = next();
    } else if (key == "--ping") {
      a.op = "ping";
    } else if (key == "--status") {
      a.op = "status";
      a.id = std::strtoull(next(), nullptr, 10);
    } else if (key == "--cancel") {
      a.op = "cancel";
      a.id = std::strtoull(next(), nullptr, 10);
    } else if (key == "--result") {
      a.op = "result";
      a.id = std::strtoull(next(), nullptr, 10);
    } else if (key == "--stats") {
      a.op = "stats";
    } else if (key == "--shutdown") {
      a.op = "shutdown";
    } else if (key == "--shutdown-now") {
      a.op = "shutdown_now";
    } else if (key == "--wait") {
      a.wait = true;
    } else if (key == "--priority") {
      a.priority = next();
    } else if (key == "--input") {
      a.input = next();
    } else if (key == "--phantom") {
      a.phantom = next();
    } else if (key == "--size") {
      a.size = std::atoi(next());
    } else if (key == "--downsample") {
      a.downsample = std::atoi(next());
    } else if (key == "--crop-foreground") {
      a.crop_pad = std::atoi(next());
    } else if (key == "--delta") {
      a.delta = std::atof(next());
    } else if (key == "--rho") {
      a.rho = std::atof(next());
    } else if (key == "--facet-angle") {
      a.facet_angle = std::atof(next());
    } else if (key == "--uniform-size") {
      a.uniform_size = std::atof(next());
    } else if (key == "--interior") {
      a.interior = next();
    } else if (key == "--lattice-spacing") {
      a.lattice_spacing = std::atof(next());
    } else if (key == "--threads") {
      a.threads = std::atoi(next());
    } else if (key == "--cm") {
      a.cm = next();
    } else if (key == "--lb") {
      a.lb = next();
    } else if (key == "--smooth") {
      a.smooth = std::atoi(next());
    } else if (key == "--report") {
      a.report = true;
    } else if (key == "--validate") {
      a.validate = true;
    } else if (key == "--out") {
      a.outs.push_back(next());
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", key.c_str());
      return 2;
    }
  }
  if (a.socket.empty()) {
    std::fprintf(stderr, "need --socket PATH (try --help)\n");
    return 2;
  }
  if (a.op.empty() && a.input.empty() && a.phantom.empty()) {
    std::fprintf(stderr, "need an action or a job (--input/--phantom)\n");
    return 2;
  }

  const pi2m::serve::JsonValue res =
      roundtrip(a.socket, build_request(a), /*quiet=*/a.wait && a.op.empty());
  if (!res.is_object()) return 1;
  if (!res["ok"].as_bool()) return 1;

  if (!a.wait || !a.op.empty()) return 0;

  // --wait: poll status until terminal, then print the result response.
  const auto id = static_cast<std::uint64_t>(res["id"].as_int());
  pi2m::telemetry::JsonWriter sw;
  sw.begin_object().kv("op", "status").kv("id", id).end_object();
  const std::string status_req = sw.str();
  while (true) {
    const pi2m::serve::JsonValue st =
        roundtrip(a.socket, status_req, /*quiet=*/true);
    if (!st.is_object() || !st["ok"].as_bool()) return 1;
    const std::string& state = st["state"].as_string();
    if (state != "queued" && state != "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  pi2m::telemetry::JsonWriter rw;
  rw.begin_object().kv("op", "result").kv("id", id).end_object();
  const pi2m::serve::JsonValue result =
      roundtrip(a.socket, rw.str(), /*quiet=*/false);
  if (!result.is_object() || !result["ok"].as_bool()) return 1;
  return result["state"].as_string() == "done" ? 0 : 1;
}
