// pi2m_serve — long-lived meshing daemon.
//
// Accepts meshing requests over a local AF_UNIX socket (newline-delimited
// JSON; see serve/protocol.hpp), runs them on a pool of executor threads
// above the shared MeshJob pipeline, and shares immutable state across
// requests: the content-addressed EDT/oracle cache and warm recycled
// arena blocks. SIGTERM/SIGINT drain gracefully — in-flight jobs finish,
// queued jobs run dry, then the process exits.
//
// Examples:
//   pi2m_serve --socket /tmp/pi2m.sock --executors 4 --threads-per-job 2
//   pi2m_submit --socket /tmp/pi2m.sock --phantom ball --size 48 --wait
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"

namespace {

void usage() {
  std::puts(
      "pi2m_serve - long-lived image-to-mesh daemon\n"
      "\n"
      "  --socket PATH           AF_UNIX socket to listen on (required)\n"
      "  --executors N           concurrent in-flight jobs (default 4)\n"
      "  --queue-cap N           queued-job bound; beyond it submissions\n"
      "                          are rejected with REJECTED_OVERLOAD\n"
      "                          (default 64)\n"
      "  --threads-per-job N     refinement workers per job when the\n"
      "                          request does not specify (default 1)\n"
      "  --edt-cache-mb N        EDT/oracle cache byte budget (default 256)\n"
      "  --manifest-dir DIR      write job_<id>.json run manifests here\n"
      "  --no-warm-arena         disable arena block recycling across jobs\n");
}

pi2m::serve::SocketServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();  // async-signal-safe
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  pi2m::serve::ServiceConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--help" || key == "-h") {
      usage();
      return 0;
    } else if (key == "--socket") {
      socket_path = next();
    } else if (key == "--executors") {
      cfg.executors = std::atoi(next());
    } else if (key == "--queue-cap") {
      cfg.queue_capacity = static_cast<std::size_t>(std::atoll(next()));
    } else if (key == "--threads-per-job") {
      cfg.default_threads = std::atoi(next());
    } else if (key == "--edt-cache-mb") {
      cfg.edt_cache_bytes =
          static_cast<std::size_t>(std::atoll(next())) << 20;
    } else if (key == "--manifest-dir") {
      cfg.manifest_dir = next();
    } else if (key == "--no-warm-arena") {
      cfg.warm_arena = false;
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", key.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "need --socket PATH (try --help)\n");
    return 2;
  }
  if (cfg.executors < 1 || cfg.default_threads < 1 ||
      cfg.queue_capacity < 1) {
    std::fprintf(stderr, "executors/threads-per-job/queue-cap must be >= 1\n");
    return 2;
  }

  pi2m::serve::MeshService service(cfg);
  pi2m::serve::SocketServer server(service, socket_path);
  if (!server.ok()) {
    std::fprintf(stderr, "pi2m_serve: %s\n", server.error().c_str());
    return 1;
  }

  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // dead peers surface as write errors instead

  std::printf("pi2m_serve: listening on %s (%d executor(s), %d thread(s)/job, "
              "queue cap %zu)\n",
              socket_path.c_str(), cfg.executors, cfg.default_threads,
              cfg.queue_capacity);
  std::fflush(stdout);

  const bool ok = server.serve();  // drains the service before returning
  g_server = nullptr;
  if (!ok) {
    std::fprintf(stderr, "pi2m_serve: %s\n", server.error().c_str());
    return 1;
  }

  // Final registry dump for operators' logs: one 'name value' per line.
  const pi2m::telemetry::MetricsRegistry reg = service.metrics_snapshot();
  for (const auto& [name, m] : reg.all()) {
    switch (m.kind) {
      case pi2m::telemetry::MetricValue::Kind::U64:
        std::printf("%s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(m.u));
        break;
      case pi2m::telemetry::MetricValue::Kind::F64:
        std::printf("%s %.9g\n", name.c_str(), m.d);
        break;
      case pi2m::telemetry::MetricValue::Kind::Bool:
        std::printf("%s %s\n", name.c_str(), m.b ? "true" : "false");
        break;
    }
  }
  std::printf("pi2m_serve: %s shutdown complete\n",
              server.drained() ? "drain" : "immediate");
  return 0;
}
