// pi2m_fuzz — seeded adversarial fuzzing of the speculative Delaunay kernel
// and the refiner, under the op-log recorder and the invariant auditor.
//
// Each case is a deterministic function of its seed: the seed picks a
// scenario family (adversarial point batches against the raw kernel, or a
// degenerate phantom through the full refiner), a thread count, and a
// hostile CM/LB configuration. The case runs with the operation-log
// recorder on, the final mesh is audited (exact-arithmetic invariants,
// check/auditor.hpp), the recorded log is replayed sequentially, and the
// replay's canonical snapshot must be byte-identical to the concurrent
// run's (check/replay.hpp).
//
// On failure the case dumps a replay bundle to --out:
//   <out>/<case>/oplog.bin     recorded operation log
//   <out>/<case>/snapshot.bin  canonical snapshot of the failing mesh
//   <out>/<case>/box.txt       virtual box (6 doubles, lo then hi)
//   <out>/<case>/manifest.json run manifest (config, counts, errors)
// `pi2m_fuzz --replay <out>/<case>` re-executes the bundle sequentially
// with per-op auditing — the deterministic debugging entry point.
//
// Usage:
//   pi2m_fuzz --corpus N [--start S] [--out DIR]   run seeds S..S+N-1
//   pi2m_fuzz --seed S [--out DIR]                 run one seed
//   pi2m_fuzz --replay DIR                         replay a dumped bundle
//   pi2m_fuzz --simd-compare N [--start S]         run seeds S..S+N-1 twice
//                                                  (scalar vs SIMD dispatch,
//                                                  single-threaded) and demand
//                                                  byte-identical snapshots
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/auditor.hpp"
#include "check/oplog.hpp"
#include "check/replay.hpp"
#include "check/snapshot.hpp"
#include "core/refiner.hpp"
#include "delaunay/operations.hpp"
#include "imaging/phantom.hpp"
#include "support/simd.hpp"
#include "telemetry/run_manifest.hpp"

namespace pi2m {
namespace {

struct CaseResult {
  bool ok = true;
  std::string name;
  std::size_t ops = 0;
  std::vector<std::string> errors;

  void fail(std::string msg) {
    ok = false;
    errors.push_back(std::move(msg));
  }
};

// ---------------------------------------------------------------------------
// Adversarial point batches (raw kernel scenarios)
// ---------------------------------------------------------------------------

/// Uniform random points strictly inside the box.
std::vector<Vec3> points_random(std::mt19937_64& rng, const Aabb& box,
                                std::size_t n) {
  std::uniform_real_distribution<double> ux(box.lo.x + 0.5, box.hi.x - 0.5);
  std::uniform_real_distribution<double> uy(box.lo.y + 0.5, box.hi.y - 0.5);
  std::uniform_real_distribution<double> uz(box.lo.z + 0.5, box.hi.z - 0.5);
  std::vector<Vec3> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back({ux(rng), uy(rng), uz(rng)});
  return pts;
}

/// Batches of *exactly* cospherical points (integer lattice points of equal
/// norm, scaled by powers of two — all coordinates are exact in doubles),
/// mixed with random filler. Forces insphere through its zero cases.
std::vector<Vec3> points_cospherical(std::mt19937_64& rng, const Aabb& box,
                                     std::size_t n) {
  const Vec3 c = box.center();
  // Lattice directions of squared norm 9: permutations/signs of (1,2,2)
  // and (0,0,3). 30 exactly-cospherical points per shell.
  std::vector<Vec3> dirs;
  const int base[2][3] = {{1, 2, 2}, {0, 0, 3}};
  for (const auto& b : base) {
    int perm[3] = {0, 1, 2};
    std::sort(perm, perm + 3);
    do {
      for (int sx = -1; sx <= 1; sx += 2)
        for (int sy = -1; sy <= 1; sy += 2)
          for (int sz = -1; sz <= 1; sz += 2) {
            const Vec3 d{static_cast<double>(sx * b[perm[0]]),
                         static_cast<double>(sy * b[perm[1]]),
                         static_cast<double>(sz * b[perm[2]])};
            if (std::find_if(dirs.begin(), dirs.end(), [&](const Vec3& e) {
                  return e.x == d.x && e.y == d.y && e.z == d.z;
                }) == dirs.end()) {
              dirs.push_back(d);
            }
          }
    } while (std::next_permutation(perm, perm + 3));
  }
  std::vector<Vec3> pts;
  pts.reserve(n);
  // Concentric exactly-cospherical shells at dyadic radii.
  for (double scale = 0.25; scale <= 1.0 && pts.size() < n / 2; scale *= 2.0) {
    for (const Vec3& d : dirs) {
      if (pts.size() >= n / 2) break;
      pts.push_back(c + scale * d);
    }
  }
  const std::vector<Vec3> filler = points_random(rng, box, n - pts.size());
  pts.insert(pts.end(), filler.begin(), filler.end());
  std::shuffle(pts.begin(), pts.end(), rng);
  return pts;
}

/// Integer-lattice points: massively collinear/coplanar (orient3d zeros on
/// every location walk) plus deliberate duplicates (insert must Fail
/// cleanly, never corrupt).
std::vector<Vec3> points_grid(std::mt19937_64& rng, const Aabb& box,
                              std::size_t n) {
  std::vector<Vec3> pts;
  pts.reserve(n + n / 8);
  const int side = static_cast<int>(std::ceil(std::cbrt(static_cast<double>(n))));
  const Vec3 ext = box.extent();
  for (int k = 0; k < side && pts.size() < n; ++k)
    for (int j = 0; j < side && pts.size() < n; ++j)
      for (int i = 0; i < side && pts.size() < n; ++i) {
        pts.push_back({box.lo.x + ext.x * (i + 1.0) / (side + 1.0),
                       box.lo.y + ext.y * (j + 1.0) / (side + 1.0),
                       box.lo.z + ext.z * (k + 1.0) / (side + 1.0)});
      }
  std::uniform_int_distribution<std::size_t> pick(0, pts.size() - 1);
  const std::size_t dupes = pts.size() / 8;
  for (std::size_t i = 0; i < dupes; ++i) pts.push_back(pts[pick(rng)]);
  std::shuffle(pts.begin(), pts.end(), rng);
  return pts;
}

/// Runs a point batch through the raw kernel with `threads` workers doing
/// speculative inserts (bounded retry on Conflict/Stale) and each worker
/// removing a fraction of its own successfully inserted vertices.
void run_kernel_case(const Aabb& box, const std::vector<Vec3>& pts,
                     int threads, unsigned seed, CaseResult& res,
                     check::MeshSnapshot* snap_out = nullptr) {
  DelaunayMesh mesh(box, std::size_t{1} << 18, std::size_t{1} << 21);
  check::begin();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      OpScratch scratch;
      std::mt19937_64 trng(seed * 1000003ull + static_cast<unsigned>(t));
      std::vector<VertexId> mine;
      CellId hint = any_alive_cell(mesh, 0);
      for (std::size_t i = static_cast<std::size_t>(t); i < pts.size();
           i += static_cast<std::size_t>(threads)) {
        for (int attempt = 0; attempt < 1000; ++attempt) {
          const OpResult r = insert_point(mesh, pts[i], VertexKind::Circumcenter,
                                          hint, t, scratch);
          if (r.status == OpStatus::Success) {
            mine.push_back(r.new_vertex);
            if (!scratch.created.empty()) hint = scratch.created.front();
            break;
          }
          if (r.status == OpStatus::Failed) break;  // duplicate/degenerate
          std::this_thread::yield();  // Conflict or Stale: retry
        }
        // Sparse speculative removals interleaved with the inserts.
        if (!mine.empty() && trng() % 16 == 0) {
          const VertexId v = mine.back();
          for (int attempt = 0; attempt < 1000; ++attempt) {
            const OpResult r = remove_vertex(mesh, v, t, scratch);
            if (r.status == OpStatus::Success) {
              mine.pop_back();
              break;
            }
            if (r.status == OpStatus::Failed) break;  // hull-adjacent etc.
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  check::end();

  const std::vector<check::OpRecord> log = check::snapshot();
  res.ops = log.size();

  check::InvariantAuditor auditor(mesh);
  const check::AuditReport rep = auditor.audit_full();
  if (!rep.ok) {
    for (const std::string& e : rep.errors) res.fail("audit: " + e);
  }
  if (snap_out) *snap_out = check::snapshot_mesh(mesh);

#if PI2M_OPLOG_ENABLED
  const check::MeshSnapshot concurrent = check::snapshot_mesh(mesh);
  check::ReplayOptions ropt;
  ropt.audit_every = 512;
  const check::ReplayResult rr = check::replay_oplog(box, log, ropt);
  if (!rr.ok) {
    res.fail("replay: " + rr.error);
  } else if (!(rr.snapshot == concurrent)) {
    res.fail("replay snapshot diverges from concurrent run (hash " +
             std::to_string(rr.hash) + " vs " +
             std::to_string(check::snapshot_hash(concurrent)) + ")");
  }
#endif
}

// ---------------------------------------------------------------------------
// Degenerate phantoms (full-refiner scenarios)
// ---------------------------------------------------------------------------

/// One-voxel-thin spherical shell: the isosurface oracle sees two surfaces
/// closer together than the sample spacing.
LabeledImage3D phantom_thin_shell(int n) {
  const double half = n / 2.0;
  const double r = 0.6 * half;
  return phantom::from_function(n, n, n, {1, 1, 1}, [&](const Vec3& p) {
    const Vec3 d = p - Vec3{half, half, half};
    return std::fabs(norm(d) - r) <= 0.75 ? Label{1} : Label{0};
  });
}

/// Two balls of different labels exactly tangent: a single-point material
/// junction.
LabeledImage3D phantom_touching(int n) {
  const double half = n / 2.0;
  const double r = 0.45 * half;
  const Vec3 c1{half - r, half, half}, c2{half + r, half, half};
  return phantom::from_function(n, n, n, {1, 1, 1}, [&](const Vec3& p) {
    if (distance(p, c1) <= r) return Label{1};
    if (distance(p, c2) <= r) return Label{2};
    return Label{0};
  });
}

/// Nested balls labelled {3, 1} with label 2 never used: exercises label
/// bookkeeping against a hole in the label range.
LabeledImage3D phantom_empty_label(int n) {
  const double half = n / 2.0;
  return phantom::from_function(n, n, n, {1, 1, 1}, [&](const Vec3& p) {
    const double d = distance(p, Vec3{half, half, half});
    if (d <= 0.35 * half) return Label{3};
    if (d <= 0.7 * half) return Label{1};
    return Label{0};
  });
}

void run_refiner_case(const LabeledImage3D& img, int threads, CmKind cm,
                      LbKind lb, unsigned seed, CaseResult& res,
                      check::MeshSnapshot* concurrent_out, Aabb* box_out,
                      std::vector<check::OpRecord>* log_out,
                      double delta = 2.5) {
  RefinerOptions opt;
  opt.threads = threads;
  opt.cm = cm;
  opt.lb = lb;
  opt.rules.delta = delta;
  opt.max_vertices = std::size_t{1} << 20;
  opt.max_cells = std::size_t{1} << 22;
  opt.watchdog_sec = 60.0;
  opt.rng_seed = seed;
  opt.audit_final = true;

  Refiner refiner(img, opt);
  check::begin();
  const RefineOutcome out = refiner.refine();
  check::end();

  const std::vector<check::OpRecord> log = check::snapshot();
  res.ops = log.size();
  if (box_out) *box_out = refiner.mesh().box();
  if (log_out) *log_out = log;

  if (!out.completed) {
    res.fail(out.livelocked ? "refine livelocked" : "refine aborted (budget)");
  }
  for (const std::string& e : out.audit_errors) res.fail("audit: " + e);
  if (concurrent_out) *concurrent_out = check::snapshot_mesh(refiner.mesh());

#if PI2M_OPLOG_ENABLED
  const check::MeshSnapshot concurrent = check::snapshot_mesh(refiner.mesh());
  check::ReplayOptions ropt;
  ropt.audit_every = 2048;
  const check::ReplayResult rr =
      check::replay_oplog(refiner.mesh().box(), log, ropt);
  if (!rr.ok) {
    res.fail("replay: " + rr.error);
  } else if (!(rr.snapshot == concurrent)) {
    res.fail("replay snapshot diverges from concurrent run (hash " +
             std::to_string(rr.hash) + " vs " +
             std::to_string(check::snapshot_hash(concurrent)) + ")");
  }
#endif
}

// ---------------------------------------------------------------------------
// Case dispatch, bundle dump, replay mode
// ---------------------------------------------------------------------------

constexpr int kScenarioCount = 8;

// Scenario 7 runs at a δ small enough for the solid ellipsoid to have a
// deep-interior band, so the hybrid BCC fill (protected lattice seeds, rule
// tag 7 in the op log, interface-blocked R2/R4/R5) is exercised under
// concurrency + replay like every other refiner path.
constexpr double kEllipsoidDelta = 0.8;

const char* scenario_name(int s) {
  switch (s) {
    case 0: return "kernel-random";
    case 1: return "kernel-cospherical";
    case 2: return "kernel-grid";
    case 3: return "phantom-thin-shell";
    case 4: return "phantom-touching";
    case 5: return "phantom-empty-label";
    case 6: return "phantom-blobs";
    case 7: return "phantom-ellipsoid";
  }
  return "?";
}

bool save_box(const Aabb& box, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << box.lo.x << ' ' << box.lo.y << ' ' << box.lo.z << '\n'
      << box.hi.x << ' ' << box.hi.y << ' ' << box.hi.z << '\n';
  return out.good();
}

bool load_box(const std::string& path, Aabb& box) {
  std::ifstream in(path);
  return static_cast<bool>(in >> box.lo.x >> box.lo.y >> box.lo.z >>
                           box.hi.x >> box.hi.y >> box.hi.z);
}

void dump_bundle(const std::string& dir, const CaseResult& res,
                 const Aabb& box, const std::vector<check::OpRecord>& log,
                 const check::MeshSnapshot& snap, int threads, CmKind cm,
                 LbKind lb, unsigned seed) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  check::save_oplog(log, dir + "/oplog.bin");
  check::save_snapshot(snap, dir + "/snapshot.bin");
  save_box(box, dir + "/box.txt");

  telemetry::RunManifest m;
  m.tool = "pi2m_fuzz";
  m.set_config("case", res.name);
  m.set_config("seed", static_cast<int>(seed));
  m.set_config("threads", threads);
  m.set_config("cm", to_string(cm));
  m.set_config("lb", to_string(lb));
  m.metrics.set("fuzz.ops", static_cast<double>(res.ops));
  m.metrics.set("fuzz.violations", static_cast<double>(res.errors.size()));
  std::ostringstream notes;
  for (const std::string& e : res.errors) notes << e << "\n";
  m.notes = notes.str();
  (void)m.write(dir + "/manifest.json");
  std::fprintf(stderr, "  bundle dumped to %s\n", dir.c_str());
}

CaseResult run_case(unsigned seed, const std::string& out_dir) {
  const int scenario = static_cast<int>(seed) % kScenarioCount;
  constexpr int kThreadCycle[3] = {1, 2, 4};
  const int threads = kThreadCycle[(seed / kScenarioCount) % 3];
  const CmKind cm = static_cast<CmKind>(seed % 4);
  const LbKind lb = (seed / 2) % 2 == 0 ? LbKind::HWS : LbKind::RWS;

  CaseResult res;
  {
    std::ostringstream name;
    name << scenario_name(scenario) << "-seed" << seed << "-t" << threads;
    res.name = name.str();
  }
  std::mt19937_64 rng(seed);
  const Aabb box{{0, 0, 0}, {32, 32, 32}};
  Aabb used_box = box;
  check::MeshSnapshot snap;
  std::vector<check::OpRecord> log;

  switch (scenario) {
    case 0:
      run_kernel_case(box, points_random(rng, box, 3000), threads, seed, res);
      break;
    case 1:
      run_kernel_case(box, points_cospherical(rng, box, 2000), threads, seed,
                      res);
      break;
    case 2:
      run_kernel_case(box, points_grid(rng, box, 1728), threads, seed, res);
      break;
    case 3:
      run_refiner_case(phantom_thin_shell(24), threads, cm, lb, seed, res,
                       &snap, &used_box, &log);
      break;
    case 4:
      run_refiner_case(phantom_touching(24), threads, cm, lb, seed, res,
                       &snap, &used_box, &log);
      break;
    case 5:
      run_refiner_case(phantom_empty_label(24), threads, cm, lb, seed, res,
                       &snap, &used_box, &log);
      break;
    case 6:
      run_refiner_case(phantom::random_blobs(24, seed), threads, cm, lb, seed,
                       res, &snap, &used_box, &log);
      break;
    case 7:
      run_refiner_case(phantom::ellipsoid(32), threads, cm, lb, seed, res,
                       &snap, &used_box, &log, kEllipsoidDelta);
      break;
  }

  std::printf("%-40s %s  (%zu ops, %d threads)\n", res.name.c_str(),
              res.ok ? "ok" : "FAIL", res.ops, threads);
  if (!res.ok) {
    for (const std::string& e : res.errors) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
    if (!out_dir.empty() && !log.empty()) {
      dump_bundle(out_dir + "/" + res.name, res, used_box, log, snap, threads,
                  cm, lb, seed);
    }
  }
  return res;
}

/// Runs one seed's scenario twice, single-threaded — once with the scalar
/// predicate dispatch forced, once with the SIMD dispatch (clamped to what
/// build + hardware support) — and demands byte-identical canonical
/// snapshots. Single-threaded runs of a fixed seed are deterministic, so any
/// divergence is a rounding/classification difference introduced by the
/// vector filters: exactly the bug class the batched predicates must not
/// have.
bool run_simd_compare_case(unsigned seed) {
  const int scenario = static_cast<int>(seed) % kScenarioCount;
  const CmKind cm = static_cast<CmKind>(seed % 4);
  const LbKind lb = (seed / 2) % 2 == 0 ? LbKind::HWS : LbKind::RWS;
  const Aabb box{{0, 0, 0}, {32, 32, 32}};

  const simd::Level levels[2] = {simd::Level::kScalar, simd::Level::kAvx2};
  check::MeshSnapshot snaps[2];
  bool case_ok = true;
  std::string level_names;
  for (int li = 0; li < 2; ++li) {
    simd::force_simd_level(levels[li]);
    level_names += std::string(li ? " vs " : "") +
                   simd::level_name(simd::active_level());
    CaseResult res;
    res.name = std::string("simd-") + simd::level_name(simd::active_level());
    // Identical RNG state per run: both levels see the same point batches.
    std::mt19937_64 rng(seed);
    switch (scenario) {
      case 0:
        run_kernel_case(box, points_random(rng, box, 3000), 1, seed, res,
                        &snaps[li]);
        break;
      case 1:
        run_kernel_case(box, points_cospherical(rng, box, 2000), 1, seed, res,
                        &snaps[li]);
        break;
      case 2:
        run_kernel_case(box, points_grid(rng, box, 1728), 1, seed, res,
                        &snaps[li]);
        break;
      case 3:
        run_refiner_case(phantom_thin_shell(24), 1, cm, lb, seed, res,
                         &snaps[li], nullptr, nullptr);
        break;
      case 4:
        run_refiner_case(phantom_touching(24), 1, cm, lb, seed, res,
                         &snaps[li], nullptr, nullptr);
        break;
      case 5:
        run_refiner_case(phantom_empty_label(24), 1, cm, lb, seed, res,
                         &snaps[li], nullptr, nullptr);
        break;
      case 6:
        run_refiner_case(phantom::random_blobs(24, seed), 1, cm, lb, seed,
                         res, &snaps[li], nullptr, nullptr);
        break;
      case 7:
        run_refiner_case(phantom::ellipsoid(32), 1, cm, lb, seed, res,
                         &snaps[li], nullptr, nullptr, kEllipsoidDelta);
        break;
    }
    if (!res.ok) {
      case_ok = false;
      for (const std::string& e : res.errors) {
        std::fprintf(stderr, "  [%s] %s\n", res.name.c_str(), e.c_str());
      }
    }
  }
  simd::clear_simd_override();

  const bool identical = snaps[0] == snaps[1];
  if (!identical) case_ok = false;
  std::printf("%-40s %s  (%s, hash %llu vs %llu)\n",
              (std::string(scenario_name(scenario)) + "-seed" +
               std::to_string(seed))
                  .c_str(),
              case_ok ? "ok" : "FAIL", level_names.c_str(),
              static_cast<unsigned long long>(check::snapshot_hash(snaps[0])),
              static_cast<unsigned long long>(check::snapshot_hash(snaps[1])));
  if (!identical) {
    std::fprintf(stderr,
                 "  snapshot divergence between dispatch levels "
                 "(%zu vertices / %zu cells vs %zu / %zu)\n",
                 snaps[0].vertices.size(), snaps[0].cells.size(),
                 snaps[1].vertices.size(), snaps[1].cells.size());
  }
  return case_ok;
}

int replay_bundle(const std::string& dir) {
  Aabb box;
  if (!load_box(dir + "/box.txt", box)) {
    std::fprintf(stderr, "cannot read %s/box.txt\n", dir.c_str());
    return 2;
  }
  std::string err;
  const auto log = check::load_oplog(dir + "/oplog.bin", &err);
  if (!log) {
    std::fprintf(stderr, "cannot load oplog: %s\n", err.c_str());
    return 2;
  }
  std::printf("replaying %zu ops from %s\n", log->size(), dir.c_str());

  check::ReplayOptions ropt;
  ropt.audit_every = 64;  // tight auditing: this is the debugging path
  const check::ReplayResult rr = check::replay_oplog(box, *log, ropt);
  if (!rr.ok) {
    std::fprintf(stderr, "replay FAILED: %s\n", rr.error.c_str());
    if (rr.failed_op >= 0) {
      std::fprintf(stderr, "  first divergence at op index %lld\n",
                   static_cast<long long>(rr.failed_op));
    }
    return 1;
  }

  check::MeshSnapshot recorded;
  if (load_snapshot(dir + "/snapshot.bin", recorded)) {
    if (rr.snapshot == recorded) {
      std::printf("replay matches recorded snapshot byte-for-byte (hash %llu)\n",
                  static_cast<unsigned long long>(rr.hash));
    } else {
      std::fprintf(stderr,
                   "replay clean but DIVERGES from recorded snapshot "
                   "(replay %zu vertices / %zu cells, recorded %zu / %zu)\n",
                   rr.snapshot.vertices.size(), rr.snapshot.cells.size(),
                   recorded.vertices.size(), recorded.cells.size());
      return 1;
    }
  } else {
    std::printf("replay clean (%zu ops applied; no recorded snapshot to "
                "compare)\n",
                rr.applied);
  }
  return 0;
}

}  // namespace
}  // namespace pi2m

int main(int argc, char** argv) {
  using namespace pi2m;

  unsigned corpus = 0, start = 0, simd_compare = 0;
  bool single = false;
  unsigned seed = 0;
  std::string out_dir = "fuzz-out";
  std::string replay_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--corpus") {
      corpus = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--start") {
      start = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--seed") {
      single = true;
      seed = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--out") {
      out_dir = next();
    } else if (a == "--replay") {
      replay_dir = next();
    } else if (a == "--simd-compare") {
      simd_compare = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage:\n"
          "  pi2m_fuzz --corpus N [--start S] [--out DIR]\n"
          "  pi2m_fuzz --seed S [--out DIR]\n"
          "  pi2m_fuzz --replay BUNDLE_DIR\n"
          "  pi2m_fuzz --simd-compare N [--start S]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", a.c_str());
      return 2;
    }
  }

  if (!replay_dir.empty()) return replay_bundle(replay_dir);

  if (simd_compare > 0) {
    unsigned failures = 0;
    for (unsigned s = start; s < start + simd_compare; ++s) {
      if (!run_simd_compare_case(s)) ++failures;
    }
    std::printf("%u/%u simd-compare cases passed\n", simd_compare - failures,
                simd_compare);
    return failures == 0 ? 0 : 1;
  }

#if !PI2M_OPLOG_ENABLED
  std::printf("note: built with PI2M_OPLOG=OFF — replay comparison disabled, "
              "running audits only\n");
#endif

  if (single) {
    return run_case(seed, out_dir).ok ? 0 : 1;
  }
  if (corpus == 0) {
    std::fprintf(stderr, "nothing to do (try --corpus 27 or --help)\n");
    return 2;
  }
  unsigned failures = 0;
  for (unsigned s = start; s < start + corpus; ++s) {
    if (!run_case(s, out_dir).ok) ++failures;
  }
  std::printf("%u/%u cases passed\n", corpus - failures, corpus);
  return failures == 0 ? 0 : 1;
}
