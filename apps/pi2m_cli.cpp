// pi2m — command-line image-to-mesh converter.
//
// Converts a multi-label segmented image (MetaImage .mha, or a built-in
// phantom) into a quality tetrahedral mesh, with the full set of paper
// knobs exposed.
//
// Examples:
//   pi2m --input brain.mha --delta 1.0 --threads 8 --out mesh.vtk
//   pi2m --phantom abdominal --size 96 --delta 0.8 --out abd.mesh
//        --smooth 3 --report     (one command line)
//   pi2m --phantom knee --size 64 --cm global --lb rws --stats
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/pi2m.hpp"
#include "core/smoothing.hpp"
#include "core/validate.hpp"
#include "imaging/phantom.hpp"
#include "imaging/resample.hpp"
#include "io/image_io.hpp"
#include "io/mesh_serialize.hpp"
#include "io/writers.hpp"
#include "metrics/hausdorff.hpp"
#include "metrics/quality.hpp"
#include "telemetry/collectors.hpp"
#include "telemetry/run_manifest.hpp"
#include "telemetry/telemetry.hpp"

namespace {

void usage() {
  std::puts(
      "pi2m - parallel image-to-mesh conversion (PI2M reproduction)\n"
      "\n"
      "input (one of):\n"
      "  --input FILE.mha        segmented MetaImage (MET_UCHAR/USHORT, LOCAL)\n"
      "  --phantom NAME          ball|shells|abdominal|knee|head_neck|vessels\n"
      "  --size N                phantom grid size (default 64)\n"
      "  --downsample F          majority-vote downsample by integer factor\n"
      "  --crop-foreground PAD   crop to the foreground bounding box + PAD\n"
      "\n"
      "meshing:\n"
      "  --delta D               surface sample spacing, world units (default 1.0)\n"
      "  --rho R                 radius-edge bound (default 2.0)\n"
      "  --facet-angle A         min boundary planar angle, deg (default 30)\n"
      "  --uniform-size S        uniform sizing field (R5)\n"
      "  --threads T             worker threads (default 1)\n"
      "  --cm NAME               aggressive|random|global|local (default local)\n"
      "  --lb NAME               rws|hws (default hws)\n"
      "  --no-geom-cache         disable the per-cell geometry cache (A/B\n"
      "                          baseline; results are identical either way)\n"
      "  --reference-walks       use the scalar-sampling oracle walks instead\n"
      "                          of the voxel-DDA traversal (A/B baseline)\n"
      "\n"
      "scheduler:\n"
      "  --topology auto|CxS     'auto' probes the host's real socket layout\n"
      "                          (/sys); 'CxS' declares C cores/socket and S\n"
      "                          sockets/blade, e.g. 8x2 (the default)\n"
      "  --pin                   pin worker threads to cpus per the topology\n"
      "  --mutex-scheduler       use the mutex begging lists instead of the\n"
      "                          lock-free slot arrays (A/B baseline)\n"
      "  --park-spin-us N        idle spin budget before a timed park\n"
      "                          (default 50)\n"
      "\n"
      "post-processing / output:\n"
      "  --smooth N              quality-guarded smoothing iterations\n"
      "  --out FILE              .vtk | .off | .mesh | .stl | .p2m (repeatable)\n"
      "  --save-image FILE.mha   write the (phantom) input image\n"
      "  --report                print quality + fidelity report\n"
      "  --validate              run structural mesh validation\n"
      "  --stats                 print parallel runtime statistics\n"
      "\n"
      "telemetry:\n"
      "  --trace FILE.json       record a Chrome trace-event timeline of the\n"
      "                          run (open in chrome://tracing or Perfetto)\n"
      "  --json-report FILE      write a versioned JSON run manifest (config,\n"
      "                          phase timings, all metrics)\n"
      "  --metrics               print every collected metric, one\n"
      "                          'name value' per line\n");
}

struct Args {
  std::string input;
  std::string phantom;
  int size = 64;
  int downsample_factor = 1;
  int crop_pad = -1;
  double delta = 1.0;
  double rho = 2.0;
  double facet_angle = 30.0;
  double uniform_size = 0.0;
  int threads = 1;
  std::string cm = "local";
  std::string lb = "hws";
  bool no_geom_cache = false;
  bool reference_walks = false;
  std::string topology;  // "", "auto", or "CxS"
  bool pin = false;
  bool mutex_scheduler = false;
  int park_spin_us = 50;
  int smooth = 0;
  std::vector<std::string> outs;
  std::string save_image;
  bool report = false;
  bool stats = false;
  bool validate = false;
  std::string trace;
  std::string json_report;
  bool metrics = false;
};

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--help" || key == "-h") {
      usage();
      std::exit(0);
    } else if (key == "--input") {
      a.input = next();
    } else if (key == "--phantom") {
      a.phantom = next();
    } else if (key == "--size") {
      a.size = std::atoi(next());
    } else if (key == "--downsample") {
      a.downsample_factor = std::atoi(next());
    } else if (key == "--crop-foreground") {
      a.crop_pad = std::atoi(next());
    } else if (key == "--delta") {
      a.delta = std::atof(next());
    } else if (key == "--rho") {
      a.rho = std::atof(next());
    } else if (key == "--facet-angle") {
      a.facet_angle = std::atof(next());
    } else if (key == "--uniform-size") {
      a.uniform_size = std::atof(next());
    } else if (key == "--threads") {
      a.threads = std::atoi(next());
    } else if (key == "--cm") {
      a.cm = next();
    } else if (key == "--lb") {
      a.lb = next();
    } else if (key == "--no-geom-cache") {
      a.no_geom_cache = true;
    } else if (key == "--reference-walks") {
      a.reference_walks = true;
    } else if (key == "--topology") {
      a.topology = next();
    } else if (key == "--pin") {
      a.pin = true;
    } else if (key == "--mutex-scheduler") {
      a.mutex_scheduler = true;
    } else if (key == "--park-spin-us") {
      a.park_spin_us = std::atoi(next());
    } else if (key == "--smooth") {
      a.smooth = std::atoi(next());
    } else if (key == "--out") {
      a.outs.push_back(next());
    } else if (key == "--save-image") {
      a.save_image = next();
    } else if (key == "--report") {
      a.report = true;
    } else if (key == "--validate") {
      a.validate = true;
    } else if (key == "--stats") {
      a.stats = true;
    } else if (key == "--trace") {
      a.trace = next();
    } else if (key == "--json-report") {
      a.json_report = next();
    } else if (key == "--metrics") {
      a.metrics = true;
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", key.c_str());
      return std::nullopt;
    }
  }
  if (a.input.empty() && a.phantom.empty()) {
    std::fprintf(stderr, "need --input or --phantom (try --help)\n");
    return std::nullopt;
  }
  return a;
}

std::optional<pi2m::CmKind> parse_cm(const std::string& s) {
  if (s == "aggressive") return pi2m::CmKind::Aggressive;
  if (s == "random") return pi2m::CmKind::Random;
  if (s == "global") return pi2m::CmKind::Global;
  if (s == "local") return pi2m::CmKind::Local;
  return std::nullopt;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) return 2;

  // --- input image ---
  pi2m::LabeledImage3D img;
  if (!args->input.empty()) {
    std::string error;
    auto loaded = pi2m::io::read_mha(args->input, &error);
    if (!loaded) {
      std::fprintf(stderr, "failed to read %s: %s\n", args->input.c_str(),
                   error.c_str());
      return 1;
    }
    img = std::move(*loaded);
  } else {
    const std::string& p = args->phantom;
    const int n = args->size;
    if (p == "ball") {
      img = pi2m::phantom::ball(n);
    } else if (p == "shells") {
      img = pi2m::phantom::concentric_shells(n);
    } else if (p == "abdominal") {
      img = pi2m::phantom::abdominal(n, n, n);
    } else if (p == "knee") {
      img = pi2m::phantom::knee(n, n, n);
    } else if (p == "head_neck") {
      img = pi2m::phantom::head_neck(n, n, n);
    } else if (p == "vessels") {
      img = pi2m::phantom::vessels(n);
    } else {
      std::fprintf(stderr, "unknown phantom '%s'\n", p.c_str());
      return 2;
    }
  }
  if (args->downsample_factor > 1) {
    img = pi2m::downsample(img, args->downsample_factor);
  }
  if (args->crop_pad >= 0) {
    pi2m::Voxel lo, hi;
    pi2m::foreground_bounds(img, args->crop_pad, &lo, &hi);
    img = pi2m::crop(img, lo, hi);
  }
  std::printf("image: %dx%dx%d, %zu tissue label(s)\n", img.nx(), img.ny(),
              img.nz(), img.labels_present().size());
  if (!args->save_image.empty() &&
      !pi2m::io::write_mha(img, args->save_image)) {
    std::fprintf(stderr, "failed to write %s\n", args->save_image.c_str());
    return 1;
  }

  // --- meshing ---
  pi2m::MeshingOptions opt;
  opt.delta = args->delta;
  opt.radius_edge_bound = args->rho;
  opt.min_planar_angle_deg = args->facet_angle;
  opt.threads = args->threads;
  opt.use_geom_cache = !args->no_geom_cache;
  opt.use_reference_walks = args->reference_walks;
  opt.pin = args->pin;
  opt.mutex_scheduler = args->mutex_scheduler;
  opt.park_spin_us = args->park_spin_us;
  if (!args->topology.empty()) {
    if (args->topology == "auto") {
      opt.topology_auto = true;
    } else {
      // "CxS": C cores per socket, S sockets per blade.
      int c = 0, s = 0;
      if (std::sscanf(args->topology.c_str(), "%dx%d", &c, &s) != 2 ||
          c < 1 || s < 1) {
        std::fprintf(stderr, "bad --topology '%s' (want auto or CxS)\n",
                     args->topology.c_str());
        return 2;
      }
      opt.topology.cores_per_socket = c;
      opt.topology.sockets_per_blade = s;
    }
  }
  if (args->uniform_size > 0) {
    opt.size_function = pi2m::sizing::uniform(args->uniform_size);
  }
  const auto cm = parse_cm(args->cm);
  if (!cm) {
    std::fprintf(stderr, "unknown contention manager '%s'\n",
                 args->cm.c_str());
    return 2;
  }
  opt.contention_manager = *cm;
  if (args->lb == "rws") {
    opt.load_balancer = pi2m::LbKind::RWS;
  } else if (args->lb == "hws") {
    opt.load_balancer = pi2m::LbKind::HWS;
  } else {
    std::fprintf(stderr, "unknown load balancer '%s'\n", args->lb.c_str());
    return 2;
  }

  // Open the tracing session before meshing so the EDT (computed in the
  // Refiner constructor) lands on the timeline too.
  if (!args->trace.empty()) {
    pi2m::telemetry::begin();
    pi2m::telemetry::set_thread_name("main");
  }
  auto finish_trace = [&]() {
    if (args->trace.empty()) return true;
    pi2m::telemetry::end();
    const std::uint64_t dropped = pi2m::telemetry::dropped_events();
    if (dropped > 0) {
      std::fprintf(stderr,
                   "trace: %llu event(s) dropped (ring overflow); oldest "
                   "events are missing\n",
                   static_cast<unsigned long long>(dropped));
    }
    if (!pi2m::telemetry::write_chrome_trace(args->trace)) {
      std::fprintf(stderr, "failed to write %s\n", args->trace.c_str());
      return false;
    }
    std::printf("wrote %s (%zu trace events)\n", args->trace.c_str(),
                pi2m::telemetry::event_count());
    return true;
  };

  pi2m::MeshingResult res = pi2m::mesh_image(img, opt);
  if (!res.ok()) {
    std::fprintf(stderr, "meshing did not complete (livelock=%d, budget=%d)\n",
                 res.outcome.livelocked, res.outcome.budget_exhausted);
    finish_trace();  // a partial timeline is exactly what diagnoses this
    return 1;
  }
  std::printf("mesh: %zu tetrahedra, %zu points, %zu interface triangles\n",
              res.mesh.num_tets(), res.mesh.num_points(),
              res.mesh.boundary_tris.size());
  std::printf("time: EDT %.2fs + refinement %.2fs  (%.0f elements/s)\n",
              res.outcome.edt_sec, res.outcome.wall_sec,
              res.elements_per_sec());

  // --- optional smoothing ---
  const pi2m::IsosurfaceOracle oracle(img, args->threads);
  std::optional<pi2m::SmoothingReport> srep;
  double smooth_sec = 0.0;
  if (args->smooth > 0) {
    pi2m::SmoothingOptions sopt;
    sopt.iterations = args->smooth;
    sopt.threads = args->threads;
    const double t0 = pi2m::now_sec();
    srep = pi2m::smooth_mesh(res.mesh, oracle, sopt);
    smooth_sec = pi2m::now_sec() - t0;
    std::printf("smoothing: %zu moves (%zu rejected), min dihedral %.2f -> "
                "%.2f deg\n",
                srep->moves_accepted, srep->moves_rejected,
                srep->min_dihedral_before, srep->min_dihedral_after);
  }

  // All traced phases are over; flush the timeline.
  if (!finish_trace()) return 1;

  // --- reports ---
  // The manifest / --metrics snapshot always carries the quality, fidelity
  // and validation numbers, so compute them whenever any consumer asks.
  const bool want_registry = !args->json_report.empty() || args->metrics;
  std::optional<pi2m::QualityReport> quality;
  std::optional<pi2m::HausdorffResult> hdist;
  std::optional<pi2m::MeshValidation> validation;
  if (args->report || want_registry) {
    quality = pi2m::evaluate_quality(res.mesh);
    hdist = pi2m::hausdorff_distance(res.mesh, oracle, 2);
  }
  if (args->validate || want_registry) {
    validation = pi2m::validate_mesh(res.mesh);
  }

  if (args->report) {
    std::printf("quality: max radius-edge %.2f, dihedral [%.1f, %.1f] deg, "
                "min boundary angle %.1f deg\n",
                quality->max_radius_edge, quality->min_dihedral_deg,
                quality->max_dihedral_deg, quality->min_boundary_planar_deg);
    std::printf("fidelity: Hausdorff %.2f (mesh->surf %.2f, surf->mesh %.2f)\n",
                hdist->symmetric(), hdist->mesh_to_surface,
                hdist->surface_to_mesh);
  }
  bool validation_failed = false;
  if (args->validate) {
    if (validation->ok) {
      std::printf("validation: OK (%zu connected component(s), %zu "
                  "non-manifold boundary edges)\n",
                  validation->connected_components,
                  validation->boundary_edges_nonmanifold);
    } else {
      std::printf("validation: FAILED\n");
      for (const auto& e : validation->errors) std::printf("  - %s\n",
                                                           e.c_str());
      validation_failed = true;  // exit 1 after the manifest is written
    }
  }
  if (args->stats) {
    const auto& t = res.outcome.totals;
    std::printf("stats: %llu ops (%llu ins / %llu rem), %llu rollbacks\n",
                static_cast<unsigned long long>(t.operations),
                static_cast<unsigned long long>(t.insertions),
                static_cast<unsigned long long>(t.removals),
                static_cast<unsigned long long>(t.rollbacks));
    std::printf("overhead: contention %.2fs, load-balance %.2fs, rollback "
                "%.2fs\n",
                t.contention_sec, t.loadbalance_sec, t.rollback_sec);
    std::printf("steals: %llu intra-socket, %llu intra-blade, %llu "
                "inter-blade\n",
                static_cast<unsigned long long>(t.steals_intra_socket),
                static_cast<unsigned long long>(t.steals_intra_blade),
                static_cast<unsigned long long>(t.steals_inter_blade));
    std::printf("rules: R1=%llu R2=%llu R3=%llu R4=%llu R5=%llu\n",
                static_cast<unsigned long long>(res.outcome.rule_counts[1]),
                static_cast<unsigned long long>(res.outcome.rule_counts[2]),
                static_cast<unsigned long long>(res.outcome.rule_counts[3]),
                static_cast<unsigned long long>(res.outcome.rule_counts[4]),
                static_cast<unsigned long long>(res.outcome.rule_counts[5]));
  }

  // --- unified metrics / manifest ---
  if (want_registry) {
    pi2m::telemetry::MetricsRegistry reg;
    pi2m::telemetry::collect_outcome(reg, res.outcome);
    pi2m::telemetry::collect_predicates(reg, pi2m::predicate_counters());
    pi2m::telemetry::collect_mesh(reg, res.mesh);
    if (srep) pi2m::telemetry::collect_smoothing(reg, *srep);
    if (quality) pi2m::telemetry::collect_quality(reg, *quality);
    if (hdist) pi2m::telemetry::collect_hausdorff(reg, *hdist);
    if (validation) pi2m::telemetry::collect_validation(reg, *validation);

    if (args->metrics) {
      for (const auto& [name, m] : reg.all()) {
        switch (m.kind) {
          case pi2m::telemetry::MetricValue::Kind::U64:
            std::printf("%s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(m.u));
            break;
          case pi2m::telemetry::MetricValue::Kind::F64:
            std::printf("%s %.9g\n", name.c_str(), m.d);
            break;
          case pi2m::telemetry::MetricValue::Kind::Bool:
            std::printf("%s %s\n", name.c_str(), m.b ? "true" : "false");
            break;
        }
      }
    }

    if (!args->json_report.empty()) {
      pi2m::telemetry::RunManifest man;
      man.tool = "pi2m_cli";
      man.set_config("input", args->input.empty()
                                  ? "phantom:" + args->phantom
                                  : args->input);
      if (args->input.empty()) man.set_config("size", args->size);
      if (args->downsample_factor > 1)
        man.set_config("downsample", args->downsample_factor);
      if (args->crop_pad >= 0) man.set_config("crop_foreground", args->crop_pad);
      man.set_config("delta", args->delta);
      man.set_config("rho", args->rho);
      man.set_config("facet_angle", args->facet_angle);
      if (args->uniform_size > 0)
        man.set_config("uniform_size", args->uniform_size);
      man.set_config("threads", args->threads);
      man.set_config("cm", args->cm);
      man.set_config("lb", args->lb);
      man.set_config("scheduler",
                     args->mutex_scheduler ? "mutex" : "lockfree");
      if (!args->topology.empty()) man.set_config("topology", args->topology);
      if (args->pin) man.set_config("pin", true);
      man.set_config("smooth", args->smooth);
      man.add_phase("edt", res.outcome.edt_sec);
      man.add_phase("refine", res.outcome.wall_sec);
      if (args->smooth > 0) man.add_phase("smooth", smooth_sec);
      man.metrics = reg;
      if (!man.write(args->json_report)) {
        std::fprintf(stderr, "failed to write %s\n",
                     args->json_report.c_str());
        return 1;
      }
      std::printf("wrote %s\n", args->json_report.c_str());
    }
  }
  // An explicitly requested validation failure trumps success output, but
  // only after every report artifact has been written.
  if (validation_failed) return 1;

  // --- outputs ---
  for (const std::string& out : args->outs) {
    bool ok = false;
    if (ends_with(out, ".vtk")) {
      ok = pi2m::io::write_vtk(res.mesh, out);
    } else if (ends_with(out, ".off")) {
      ok = pi2m::io::write_off_surface(res.mesh, out);
    } else if (ends_with(out, ".mesh")) {
      ok = pi2m::io::write_medit(res.mesh, out);
    } else if (ends_with(out, ".stl")) {
      ok = pi2m::io::write_stl_surface(res.mesh, out);
    } else if (ends_with(out, ".p2m")) {
      ok = pi2m::io::save_mesh(res.mesh, out);
    } else {
      std::fprintf(stderr, "unknown output format: %s\n", out.c_str());
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "failed to write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
