// pi2m — command-line image-to-mesh converter.
//
// Converts a multi-label segmented image (MetaImage .mha, or a built-in
// phantom) into a quality tetrahedral mesh, with the full set of paper
// knobs exposed.
//
// The pipeline itself (load -> EDT -> refine -> extract -> smooth ->
// reports) lives in pipeline/mesh_job.hpp, shared with the serving daemon
// (apps/pi2m_serve.cpp); this file is flag parsing and console output.
//
// Examples:
//   pi2m --input brain.mha --delta 1.0 --threads 8 --out mesh.vtk
//   pi2m --phantom abdominal --size 96 --delta 0.8 --out abd.mesh
//        --smooth 3 --report     (one command line)
//   pi2m --phantom knee --size 64 --cm global --lb rws --stats
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "io/image_io.hpp"
#include "pipeline/mesh_job.hpp"
#include "support/simd.hpp"
#include "telemetry/telemetry.hpp"

namespace {

void usage() {
  std::puts(
      "pi2m - parallel image-to-mesh conversion (PI2M reproduction)\n"
      "\n"
      "input (one of):\n"
      "  --input FILE.mha        segmented MetaImage (MET_UCHAR/USHORT, LOCAL)\n"
      "  --phantom NAME          ball|shells|abdominal|knee|head_neck|vessels\n"
      "                          |ellipsoid|thick_shell (volume-dominated)\n"
      "  --size N                phantom grid size (default 64)\n"
      "  --downsample F          majority-vote downsample by integer factor\n"
      "  --crop-foreground PAD   crop to the foreground bounding box + PAD\n"
      "\n"
      "meshing:\n"
      "  --delta D               surface sample spacing, world units (default 1.0)\n"
      "  --rho R                 radius-edge bound (default 2.0)\n"
      "  --facet-angle A         min boundary planar angle, deg (default 30)\n"
      "  --uniform-size S        uniform sizing field (R5)\n"
      "  --interior NAME         lattice (BCC template bulk + Delaunay skin,\n"
      "                          default) | delaunay (refine everywhere; the\n"
      "                          pre-hybrid behaviour / A-B baseline)\n"
      "  --lattice-spacing A     BCC cube size, world units (default 2*delta)\n"
      "  --threads T             worker threads (default 1)\n"
      "  --cm NAME               aggressive|random|global|local (default local)\n"
      "  --lb NAME               rws|hws (default hws)\n"
      "  --no-geom-cache         disable the per-cell geometry cache (A/B\n"
      "                          baseline; results are identical either way)\n"
      "  --reference-walks       use the scalar-sampling oracle walks instead\n"
      "                          of the voxel-DDA traversal (A/B baseline)\n"
      "  --no-simd               force the scalar predicate-filter dispatch\n"
      "                          (A/B baseline; classifications are identical\n"
      "                          either way; PI2M_SIMD=scalar|avx2 also works)\n"
      "\n"
      "scheduler:\n"
      "  --topology auto|CxS     'auto' probes the host's real socket layout\n"
      "                          (/sys); 'CxS' declares C cores/socket and S\n"
      "                          sockets/blade, e.g. 8x2 (the default)\n"
      "  --pin                   pin worker threads to cpus per the topology\n"
      "  --mutex-scheduler       use the mutex begging lists instead of the\n"
      "                          lock-free slot arrays (A/B baseline)\n"
      "  --park-spin-us N        idle spin budget before a timed park\n"
      "                          (default 50)\n"
      "\n"
      "post-processing / output:\n"
      "  --smooth N              quality-guarded smoothing iterations\n"
      "  --out FILE              .vtk | .off | .mesh | .stl | .p2m (repeatable)\n"
      "  --save-image FILE.mha   write the (phantom) input image\n"
      "  --report                print quality + fidelity report\n"
      "  --validate              run structural mesh validation\n"
      "  --stats                 print parallel runtime statistics\n"
      "\n"
      "telemetry:\n"
      "  --trace FILE.json       record a Chrome trace-event timeline of the\n"
      "                          run (open in chrome://tracing or Perfetto)\n"
      "  --json-report FILE      write a versioned JSON run manifest (config,\n"
      "                          phase timings, all metrics)\n"
      "  --metrics               print every collected metric, one\n"
      "                          'name value' per line\n");
}

struct Args {
  pi2m::JobSpec spec;
  std::string save_image;
  bool report = false;
  bool stats = false;
  bool validate = false;
  std::string trace;
  std::string json_report;
  bool metrics = false;
};

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  pi2m::JobSpec& s = a.spec;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--help" || key == "-h") {
      usage();
      std::exit(0);
    } else if (key == "--input") {
      s.input_path = next();
    } else if (key == "--phantom") {
      s.phantom = next();
    } else if (key == "--size") {
      s.phantom_size = std::atoi(next());
    } else if (key == "--downsample") {
      s.downsample = std::atoi(next());
    } else if (key == "--crop-foreground") {
      s.crop_pad = std::atoi(next());
    } else if (key == "--delta") {
      s.mesh.delta = std::atof(next());
    } else if (key == "--rho") {
      s.mesh.radius_edge_bound = std::atof(next());
    } else if (key == "--facet-angle") {
      s.mesh.min_planar_angle_deg = std::atof(next());
    } else if (key == "--uniform-size") {
      s.uniform_size = std::atof(next());
    } else if (key == "--interior") {
      const std::string name = next();
      const auto fill = pi2m::parse_interior_name(name);
      if (!fill) {
        std::fprintf(stderr, "unknown interior fill '%s'\n", name.c_str());
        std::exit(2);
      }
      s.mesh.interior = *fill;
    } else if (key == "--lattice-spacing") {
      s.mesh.lattice_spacing = std::atof(next());
    } else if (key == "--threads") {
      s.mesh.threads = std::atoi(next());
    } else if (key == "--cm") {
      const std::string name = next();
      const auto cm = pi2m::parse_cm_name(name);
      if (!cm) {
        std::fprintf(stderr, "unknown contention manager '%s'\n",
                     name.c_str());
        std::exit(2);
      }
      s.mesh.contention_manager = *cm;
    } else if (key == "--lb") {
      const std::string name = next();
      const auto lb = pi2m::parse_lb_name(name);
      if (!lb) {
        std::fprintf(stderr, "unknown load balancer '%s'\n", name.c_str());
        std::exit(2);
      }
      s.mesh.load_balancer = *lb;
    } else if (key == "--no-geom-cache") {
      s.mesh.use_geom_cache = false;
    } else if (key == "--reference-walks") {
      s.mesh.use_reference_walks = true;
    } else if (key == "--no-simd") {
      pi2m::simd::force_simd_level(pi2m::simd::Level::kScalar);
    } else if (key == "--topology") {
      s.topology_desc = next();
      if (s.topology_desc == "auto") {
        s.mesh.topology_auto = true;
      } else {
        // "CxS": C cores per socket, S sockets per blade.
        int c = 0, so = 0;
        if (std::sscanf(s.topology_desc.c_str(), "%dx%d", &c, &so) != 2 ||
            c < 1 || so < 1) {
          std::fprintf(stderr, "bad --topology '%s' (want auto or CxS)\n",
                       s.topology_desc.c_str());
          std::exit(2);
        }
        s.mesh.topology.cores_per_socket = c;
        s.mesh.topology.sockets_per_blade = so;
      }
    } else if (key == "--pin") {
      s.mesh.pin = true;
    } else if (key == "--mutex-scheduler") {
      s.mesh.mutex_scheduler = true;
    } else if (key == "--park-spin-us") {
      s.mesh.park_spin_us = std::atoi(next());
    } else if (key == "--smooth") {
      s.smooth = std::atoi(next());
    } else if (key == "--out") {
      s.outputs.push_back(next());
    } else if (key == "--save-image") {
      a.save_image = next();
    } else if (key == "--report") {
      a.report = true;
    } else if (key == "--validate") {
      a.validate = true;
    } else if (key == "--stats") {
      a.stats = true;
    } else if (key == "--trace") {
      a.trace = next();
    } else if (key == "--json-report") {
      a.json_report = next();
    } else if (key == "--metrics") {
      a.metrics = true;
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", key.c_str());
      return std::nullopt;
    }
  }
  if (s.input_path.empty() && s.phantom.empty()) {
    std::fprintf(stderr, "need --input or --phantom (try --help)\n");
    return std::nullopt;
  }
  // Output formats are validated up front so a typo fails before an
  // hour-long refinement, not after.
  for (const std::string& out : s.outputs) {
    const auto dot = out.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : out.substr(dot);
    if (ext != ".vtk" && ext != ".off" && ext != ".mesh" && ext != ".stl" &&
        ext != ".p2m") {
      std::fprintf(stderr, "unknown output format: %s\n", out.c_str());
      std::exit(2);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse(argc, argv);
  if (!args) return 2;

  // The manifest / --metrics snapshot always carries the quality, fidelity
  // and validation numbers, so compute them whenever any consumer asks.
  const bool want_registry = !args->json_report.empty() || args->metrics;
  args->spec.want_report = args->report || want_registry;
  args->spec.want_validation = args->validate || want_registry;

  pi2m::MeshJob job(std::move(args->spec));

  // --- input image ---
  if (!job.prepare()) {
    std::fprintf(stderr, "%s\n", job.artifacts().error.c_str());
    return job.artifacts().error.rfind("failed to read", 0) == 0 ? 1 : 2;
  }
  const pi2m::LabeledImage3D& img = job.image();
  std::printf("image: %dx%dx%d, %zu tissue label(s)\n", img.nx(), img.ny(),
              img.nz(), img.labels_present().size());
  if (!args->save_image.empty() &&
      !pi2m::io::write_mha(img, args->save_image)) {
    std::fprintf(stderr, "failed to write %s\n", args->save_image.c_str());
    return 1;
  }

  // Open the tracing session before meshing so the EDT (computed in the
  // Refiner constructor) lands on the timeline too.
  if (!args->trace.empty()) {
    pi2m::telemetry::begin();
    pi2m::telemetry::set_thread_name("main");
  }
  auto finish_trace = [&]() {
    if (args->trace.empty()) return true;
    pi2m::telemetry::end();
    const std::uint64_t dropped = pi2m::telemetry::dropped_events();
    if (dropped > 0) {
      std::fprintf(stderr,
                   "trace: %llu event(s) dropped (ring overflow); oldest "
                   "events are missing\n",
                   static_cast<unsigned long long>(dropped));
    }
    if (!pi2m::telemetry::write_chrome_trace(args->trace)) {
      std::fprintf(stderr, "failed to write %s\n", args->trace.c_str());
      return false;
    }
    std::printf("wrote %s (%zu trace events)\n", args->trace.c_str(),
                pi2m::telemetry::event_count());
    return true;
  };

  // --- the pipeline: EDT -> refine -> extract -> smooth -> reports ---
  const pi2m::JobArtifacts& art = job.run();
  if (!art.outcome.completed) {
    std::fprintf(stderr, "meshing did not complete (livelock=%d, budget=%d)\n",
                 art.outcome.livelocked, art.outcome.budget_exhausted);
    finish_trace();  // a partial timeline is exactly what diagnoses this
    return 1;
  }
  std::printf("mesh: %zu tetrahedra, %zu points, %zu interface triangles\n",
              art.mesh.num_tets(), art.mesh.num_points(),
              art.mesh.boundary_tris.size());
  const double eps = art.outcome.wall_sec > 0
                         ? static_cast<double>(art.mesh.num_tets()) /
                               art.outcome.wall_sec
                         : 0.0;
  std::printf("time: EDT %.2fs + refinement %.2fs  (%.0f elements/s)\n",
              art.outcome.edt_sec, art.outcome.wall_sec, eps);
  if (art.outcome.lattice_tets > 0) {
    std::printf("lattice: %zu interior tets from %zu cubes, %zu interface "
                "vertices (fill %.3fs, seed %.3fs)\n",
                art.outcome.lattice_tets, art.outcome.lattice_cubes,
                art.outcome.lattice_seeds, art.outcome.lattice_fill_sec,
                art.outcome.lattice_seed_sec);
  }
  if (art.smoothing) {
    std::printf("smoothing: %zu moves (%zu rejected), min dihedral %.2f -> "
                "%.2f deg\n",
                art.smoothing->moves_accepted, art.smoothing->moves_rejected,
                art.smoothing->min_dihedral_before,
                art.smoothing->min_dihedral_after);
  }

  // All traced phases are over; flush the timeline.
  if (!finish_trace()) return 1;

  // --- reports ---
  if (args->report) {
    std::printf("quality: max radius-edge %.2f, dihedral [%.1f, %.1f] deg, "
                "min boundary angle %.1f deg\n",
                art.quality->max_radius_edge, art.quality->min_dihedral_deg,
                art.quality->max_dihedral_deg,
                art.quality->min_boundary_planar_deg);
    std::printf("fidelity: Hausdorff %.2f (mesh->surf %.2f, surf->mesh %.2f)\n",
                art.hausdorff->symmetric(), art.hausdorff->mesh_to_surface,
                art.hausdorff->surface_to_mesh);
  }
  bool validation_failed = false;
  if (args->validate) {
    if (art.validation->ok) {
      std::printf("validation: OK (%zu connected component(s), %zu "
                  "non-manifold boundary edges)\n",
                  art.validation->connected_components,
                  art.validation->boundary_edges_nonmanifold);
    } else {
      std::printf("validation: FAILED\n");
      for (const auto& e : art.validation->errors) std::printf("  - %s\n",
                                                               e.c_str());
      validation_failed = true;  // exit 1 after the manifest is written
    }
  }
  if (args->stats) {
    const auto& t = art.outcome.totals;
    std::printf("stats: %llu ops (%llu ins / %llu rem), %llu rollbacks\n",
                static_cast<unsigned long long>(t.operations),
                static_cast<unsigned long long>(t.insertions),
                static_cast<unsigned long long>(t.removals),
                static_cast<unsigned long long>(t.rollbacks));
    std::printf("overhead: contention %.2fs, load-balance %.2fs, rollback "
                "%.2fs\n",
                t.contention_sec, t.loadbalance_sec, t.rollback_sec);
    std::printf("steals: %llu intra-socket, %llu intra-blade, %llu "
                "inter-blade\n",
                static_cast<unsigned long long>(t.steals_intra_socket),
                static_cast<unsigned long long>(t.steals_intra_blade),
                static_cast<unsigned long long>(t.steals_inter_blade));
    std::printf("rules: R1=%llu R2=%llu R3=%llu R4=%llu R5=%llu\n",
                static_cast<unsigned long long>(art.outcome.rule_counts[1]),
                static_cast<unsigned long long>(art.outcome.rule_counts[2]),
                static_cast<unsigned long long>(art.outcome.rule_counts[3]),
                static_cast<unsigned long long>(art.outcome.rule_counts[4]),
                static_cast<unsigned long long>(art.outcome.rule_counts[5]));
  }

  // --- unified metrics / manifest ---
  if (want_registry) {
    if (args->metrics) {
      for (const auto& [name, m] : art.metrics.all()) {
        switch (m.kind) {
          case pi2m::telemetry::MetricValue::Kind::U64:
            std::printf("%s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(m.u));
            break;
          case pi2m::telemetry::MetricValue::Kind::F64:
            std::printf("%s %.9g\n", name.c_str(), m.d);
            break;
          case pi2m::telemetry::MetricValue::Kind::Bool:
            std::printf("%s %s\n", name.c_str(), m.b ? "true" : "false");
            break;
        }
      }
    }
    if (!args->json_report.empty()) {
      const pi2m::telemetry::RunManifest man = job.build_manifest("pi2m_cli");
      if (!man.write(args->json_report)) {
        std::fprintf(stderr, "failed to write %s\n",
                     args->json_report.c_str());
        return 1;
      }
      std::printf("wrote %s\n", args->json_report.c_str());
    }
  }
  // An explicitly requested validation failure trumps success output, but
  // only after every report artifact has been written.
  if (validation_failed) return 1;

  // --- outputs (already written by the job; report or fail) ---
  if (!art.ok) {
    std::fprintf(stderr, "%s\n", art.error.c_str());
    return 1;
  }
  for (const std::string& out : job.spec().outputs) {
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
